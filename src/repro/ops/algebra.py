"""Composable stream-operator algebra over the P2G model.

Every workload so far is a hand-written program (``build_mjpeg``,
``build_kmeans``, …): the author picks field names, writes
:class:`~repro.core.kernels.FetchSpec`/:class:`~repro.core.kernels.StoreSpec`
tuples and wires ages by hand.  This module gives the same power a
declarative surface: a pipeline is a graph of **operators** —

``source`` → ``map`` / ``window`` / ``keyed_partition`` / ``merge`` /
``multicast`` → ``sink``

— and :func:`repro.ops.compile_ops` lowers the graph onto the existing
model (fields + kernels), so every operator pipeline inherits the whole
runtime for free: dependency-analysis scheduling, batched dispatch and
vectorization, live streaming with QoS, multi-tenancy, elastic
clusters.

Age semantics (the part that is not obvious from the names):

* every operator emits one value per **age**; ages are the stream clock
  shared by the whole pipeline;
* ``window(n)`` makes a downstream operator at age ``a`` fetch its
  input at ages ``a .. a+n-1`` — windows look *forward*, so age 0 is
  well-defined from the first frame and no negative ages ever appear
  (the output stream is simply ``n-1`` ages shorter than its input);
* ``skew(k)`` shifts an input forward by ``k`` ages — the merge
  alignment knob: ``merge(..., [a, b.skew(1)])`` combines ``a@t`` with
  ``b@t+1``;
* ``merge`` is lockstep by default: output age ``t`` waits for *all*
  inputs at ``t`` (plus skew), so a stalled or slower source stalls the
  merged stream rather than emitting partial data, and an *exhausted*
  source ends it — the dependency analyzer never dispatches an
  instance whose inputs cannot complete.

Naming: an operator named ``op`` with output port ``p`` owns field
``"op.p"`` and kernel ``"op"``.  Operator and port names are validated
by :func:`repro.core.naming.validate_component` (no ``.``, no ``/``,
non-empty) because they end up in shared-memory segment paths and under
multi-tenant session prefixes.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field as dc_field, replace as dc_replace
from typing import Any, Callable, Mapping, Sequence

from ..core.naming import NAME_SEP, validate_component

__all__ = [
    "Handle",
    "OpNode",
    "PortSpec",
    "merge",
    "sink",
    "slot_of",
    "source",
]

#: Monotonic operator creation counter; gives compilation a
#: deterministic node order that matches construction order.
_SEQ = itertools.count()


def slot_of(key: Any, slots: int) -> int:
    """Deterministic key→slot assignment for ``keyed_partition``.

    Hash-based (blake2b over ``repr(key)``), stable across processes
    and Python runs — unlike ``hash()``, which is salted — so the same
    key lands in the same slot on every backend and node.
    """
    if slots <= 0:
        raise ValueError(f"slots must be positive, got {slots}")
    digest = hashlib.blake2b(
        repr(key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % slots


@dataclass(frozen=True)
class PortSpec:
    """One output port: element dtype + declared extent."""

    dtype: str
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(n) for n in self.shape))


def _port_specs(out: Mapping[str, tuple]) -> dict[str, PortSpec]:
    specs: dict[str, PortSpec] = {}
    for port, spec in out.items():
        validate_component(port, what="port name")
        if isinstance(spec, PortSpec):
            specs[port] = spec
        else:
            dtype, shape = spec
            specs[port] = PortSpec(dtype, tuple(shape))
    if not specs:
        raise ValueError("operator must declare at least one output port")
    return specs


@dataclass(frozen=True)
class InputRef:
    """One resolved input of an operator: which upstream field feeds
    which body param, over what window/skew, at what block granularity.

    ``block`` is ``None`` for whole-field fetches, else per-axis block
    sizes for the leading axes (remaining axes fetch whole).
    """

    node: "OpNode"
    port: str
    field: str
    spec: PortSpec
    param: str
    window: int = 1
    skew: int = 0
    block: tuple[int, ...] | None = None


@dataclass(eq=False)  # identity hash/eq: nodes are graph vertices
class OpNode:
    """One operator in the graph.

    ``kind`` is one of ``source / map / keyed_partition / multicast /
    sink``; ``window`` and ``merge`` are not nodes — a window is a
    property of an *input edge* (:class:`InputRef`), and a merge is
    simply a map with several inputs.
    """

    kind: str
    name: str
    ports: dict[str, PortSpec]
    inputs: tuple[InputRef, ...] = ()
    #: map/keyed_partition/sink: the kernel body or sink function.
    fn: Callable | None = None
    #: map: per-out-port leading store-block sizes.
    out_block: dict[str, tuple[int, ...]] = dc_field(default_factory=dict)
    #: keyed_partition: number of slots (leading field axis).
    slots: int | None = None
    #: multicast: fan-out width.
    branches: int | None = None
    #: source: batch payloads — sequence of per-port dicts, or a
    #: callable ``age -> dict | None`` (None = end of stream).
    payloads: Any = None
    #: source: live FrameSource + frame→payload adapter.
    live: Any = None
    adapter: Callable[[Any], Mapping[str, Any]] | None = None
    #: sink: the ``ctx.output`` key (defaults to the op name).
    output_key: str | None = None
    #: construction order (deterministic compilation order).
    seq: int = dc_field(default_factory=lambda: next(_SEQ))

    def field_of(self, port: str) -> str:
        return f"{self.name}{NAME_SEP}{port}"


def _default_adapter(ports: dict[str, PortSpec]):
    """Frame → per-port payload when no adapter is given: YUV frames map
    to their ``y/u/v`` planes, mappings pass through, and a single-port
    source accepts the raw array."""

    def adapt(frame):
        if isinstance(frame, Mapping):
            return frame
        planes = {
            p: getattr(frame, p)
            for p in ("y", "u", "v")
            if hasattr(frame, p)
        }
        if planes:
            return planes
        if len(ports) == 1:
            return {next(iter(ports)): frame}
        raise TypeError(
            f"cannot adapt frame of type {type(frame).__name__} to ports "
            f"{sorted(ports)}; pass an explicit adapter"
        )

    return adapt


@dataclass(frozen=True)
class Handle:
    """A stream handle: a selection of one operator's output ports, plus
    pending ``window``/``skew``/``block`` modifiers that apply when the
    handle becomes another operator's input.

    Handles are immutable; every modifier returns a new handle.
    """

    node: OpNode
    #: (port, field) pairs in declaration order.  The field is carried
    #: separately because a multicast branch exposes logical port ``p``
    #: backed by branch field ``"mc.p_b0"``.
    port_fields: tuple[tuple[str, str], ...]
    window_size: int = 1
    skew_ages: int = 0
    block_sizes: tuple[int, ...] | None = None

    # -- modifiers ----------------------------------------------------
    def select(self, *ports: str) -> "Handle":
        """Restrict the handle to the named ports (order as given)."""
        have = dict(self.port_fields)
        missing = [p for p in ports if p not in have]
        if missing:
            raise KeyError(
                f"operator {self.node.name!r} has no port(s) {missing}; "
                f"available: {[p for p, _ in self.port_fields]}"
            )
        return dc_replace(
            self, port_fields=tuple((p, have[p]) for p in ports)
        )

    def __getitem__(self, port: str) -> "Handle":
        return self.select(port)

    def window(self, n: int) -> "Handle":
        """Fetch ``n`` consecutive ages per output age (forward: output
        age ``a`` sees input ages ``a .. a+n-1``)."""
        if n < 1:
            raise ValueError(f"window size must be >= 1, got {n}")
        return dc_replace(self, window_size=int(n))

    def skew(self, k: int) -> "Handle":
        """Shift this input forward by ``k`` ages (merge alignment)."""
        if k < 0:
            raise ValueError(
                f"skew must be >= 0 (windows/skews look forward), got {k}"
            )
        return dc_replace(self, skew_ages=int(k))

    def block(self, *sizes: int) -> "Handle":
        """Fetch in blocks of the given per-axis sizes (data-parallel
        instances) instead of whole-field."""
        if not sizes:
            raise ValueError("block() needs at least one axis size")
        return dc_replace(
            self, block_sizes=tuple(int(s) for s in sizes)
        )

    # -- inputs -------------------------------------------------------
    def _refs(self, *, qualify: bool) -> list[InputRef]:
        refs = []
        for port, fname in self.port_fields:
            # The node-level port backing this handle port: usually the
            # same name, but a multicast branch exposes logical ``p``
            # backed by node port ``p_b<i>`` (field ``"mc.p_b<i>"``).
            node_port = fname.split(NAME_SEP, 1)[1]
            spec = self.node.ports[node_port]
            param = fname if qualify else port
            if self.window_size > 1:
                for k in range(self.window_size):
                    refs.append(
                        InputRef(
                            self.node, port, fname, spec,
                            f"{param}@{k}",
                            window=self.window_size,
                            skew=self.skew_ages + k,
                            block=self.block_sizes,
                        )
                    )
            else:
                refs.append(
                    InputRef(
                        self.node, port, fname, spec, param,
                        window=1, skew=self.skew_ages,
                        block=self.block_sizes,
                    )
                )
        return refs

    # -- downstream operators -----------------------------------------
    def map(
        self,
        name: str,
        fn: Callable,
        out: Mapping[str, tuple],
        out_block: Mapping[str, Sequence[int]] | None = None,
    ) -> "Handle":
        """Apply a kernel body to this handle's ports.

        ``fn`` receives a :class:`~repro.core.kernels.KernelContext`;
        fetch params are the port names (``"p@k"`` under a window) and
        it must ``ctx.emit`` each out-port name.  ``out`` declares the
        output ports (``{port: (dtype, shape)}``); ``out_block`` gives
        per-port leading store-block sizes when the input is fetched
        with :meth:`block` (the store's index space must mirror the
        fetch's).
        """
        validate_component(name, what="operator name")
        node = OpNode(
            kind="map",
            name=name,
            ports=_port_specs(out),
            inputs=tuple(self._refs(qualify=False)),
            fn=fn,
            out_block={
                p: tuple(int(s) for s in b)
                for p, b in (out_block or {}).items()
            },
        )
        return _handle(node)

    def keyed_partition(
        self,
        name: str,
        slots: int,
        fn: Callable,
        out: Mapping[str, tuple],
    ) -> "Handle":
        """Partition this stream into ``slots`` keyed groups.

        The lowered kernel runs one instance per ``slot`` per age
        (``index_vars=("slot",)`` with an explicit domain); ``fn`` reads
        ``ctx.index["slot"]``, fetches the input ports whole, and emits
        each out port's *per-slot* value — the declared ``out`` shapes
        are per slot; the backing field gains a leading ``slots`` axis.
        Use :func:`slot_of` for the deterministic key→slot assignment.
        """
        validate_component(name, what="operator name")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        # The declared shapes are per slot; the backing fields gain the
        # leading ``slots`` axis, and that is what downstream sees.
        slotted = {
            port: (spec.dtype, (int(slots),) + spec.shape)
            for port, spec in _port_specs(out).items()
        }
        node = OpNode(
            kind="keyed_partition",
            name=name,
            ports=_port_specs(slotted),
            inputs=tuple(self._refs(qualify=False)),
            fn=fn,
            slots=int(slots),
        )
        return _handle(node)

    def multicast(self, name: str, n: int) -> tuple["Handle", ...]:
        """Fan this stream out to ``n`` independent branches.

        Lowers to one copy kernel whose store specs fan out each port to
        ``n`` branch fields (write-once forbids two consumers sharing a
        mutable buffer; fan-out stores give each branch its own field).
        Returns one handle per branch.
        """
        validate_component(name, what="operator name")
        if n < 1:
            raise ValueError(f"multicast width must be >= 1, got {n}")
        if self.window_size != 1 or self.skew_ages:
            raise ValueError(
                "multicast input cannot carry window/skew; apply them "
                "on the branch consumers instead"
            )
        ports = {
            f"{port}_b{i}": self.node.ports[port]
            for port, _ in self.port_fields
            for i in range(n)
        }
        node = OpNode(
            kind="multicast",
            name=name,
            ports=ports,
            inputs=tuple(self._refs(qualify=False)),
            branches=int(n),
        )
        branch_handles = []
        for i in range(n):
            branch_handles.append(
                Handle(
                    node,
                    tuple(
                        (port, node.field_of(f"{port}_b{i}"))
                        for port, _ in self.port_fields
                    ),
                )
            )
        return tuple(branch_handles)

    def sink(
        self,
        name: str,
        fn: Callable | None = None,
        key: str | None = None,
    ) -> "Handle":
        """Terminate this stream in an out-of-band collector (see
        :func:`sink` for the multi-input form)."""
        return sink(name, [self], fn=fn, key=key)


def _handle(node: OpNode) -> Handle:
    return Handle(
        node, tuple((p, node.field_of(p)) for p in node.ports)
    )


# ----------------------------------------------------------------------
# Module-level constructors
# ----------------------------------------------------------------------
def source(
    name: str,
    out: Mapping[str, tuple],
    frames: Any = None,
    live: Any = None,
    adapter: Callable[[Any], Mapping[str, Any]] | None = None,
) -> Handle:
    """Declare a stream source with the given output ports.

    ``frames`` drives **batch** compilation: a sequence of per-port
    payload dicts, or a callable ``age -> dict | None`` (``None`` ends
    the stream).  ``live`` drives **live** compilation: a
    :class:`~repro.stream.FrameSource` whose frames are turned into
    per-port payloads by ``adapter`` (default: YUV planes / mappings /
    raw single-port arrays).  A source may carry both and the compile
    mode picks.
    """
    validate_component(name, what="operator name")
    ports = _port_specs(out)
    node = OpNode(
        kind="source",
        name=name,
        ports=ports,
        payloads=frames,
        live=live,
        adapter=adapter or _default_adapter(ports),
    )
    return _handle(node)


def merge(
    name: str,
    inputs: Sequence[Handle],
    fn: Callable,
    out: Mapping[str, tuple],
    out_block: Mapping[str, Sequence[int]] | None = None,
) -> Handle:
    """Combine several streams into one kernel (lockstep by default).

    Output age ``t`` fetches every input at age ``t + skew`` (apply
    :meth:`Handle.skew` / :meth:`Handle.window` per input for explicit
    alignment).  Body fetch params are the inputs' *field* names
    (``"cam0.y"``) since port names may collide across inputs.
    """
    validate_component(name, what="operator name")
    if not inputs:
        raise ValueError("merge needs at least one input handle")
    refs: list[InputRef] = []
    for h in inputs:
        refs.extend(h._refs(qualify=True))
    params = [r.param for r in refs]
    if len(set(params)) != len(params):
        raise ValueError(
            f"merge {name!r}: duplicate input params {params} (the same "
            f"port of the same operator appears twice; multicast it)"
        )
    node = OpNode(
        kind="map",
        name=name,
        ports=_port_specs(out),
        inputs=tuple(refs),
        fn=fn,
        out_block={
            p: tuple(int(s) for s in b)
            for p, b in (out_block or {}).items()
        },
    )
    return _handle(node)


def sink(
    name: str,
    inputs: Sequence[Handle],
    fn: Callable | None = None,
    key: str | None = None,
) -> Handle:
    """Terminate one or more streams in an out-of-band collector.

    The lowered kernel fetches every input whole per age and delivers
    ``fn(age, values)`` via ``ctx.output`` under ``key`` (default: the
    sink's name) — collected by the compiled pipeline's
    :class:`~repro.ops.compile.OpsCollector` in the parent process on
    every backend.  ``values`` maps fetch params (port names for a
    single input, field names otherwise) to arrays; with ``fn=None``
    a single-param sink passes the value through, a multi-param sink
    passes the dict.
    """
    validate_component(name, what="operator name")
    if not inputs:
        raise ValueError("sink needs at least one input handle")
    qualify = len(inputs) > 1
    refs: list[InputRef] = []
    for h in inputs:
        refs.extend(h._refs(qualify=qualify))
    if key is not None:
        validate_component(key, what="sink output key")
    node = OpNode(
        kind="sink",
        name=name,
        ports={},
        inputs=tuple(refs),
        fn=fn,
        output_key=key or name,
    )
    return Handle(node, ())
