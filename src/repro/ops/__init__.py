"""Composable stream-operator algebra that compiles to fields+kernels.

Declarative pipelines over the P2G model::

    from repro import ops

    cam = ops.source("cam", {"y": ("uint8", (64, 64))},
                     frames=[{"y": f} for f in planes])
    stats = cam["y"].window(2).block(16, 16).map(
        "stats", body, out={"m": ("int64", (4, 4, 2))},
        out_block={"m": (1, 1)})
    done = stats.sink("collect")
    pipe = ops.compile_ops(done)
    run_program(pipe.program, workers=4)
    results = pipe.collector().values()

See :mod:`repro.ops.algebra` for the operator surface and age
semantics, :mod:`repro.ops.compile` for the lowering rules, and
DESIGN.md §16 for the full story.
"""

from .algebra import (
    Handle,
    OpNode,
    PortSpec,
    merge,
    sink,
    slot_of,
    source,
)
from .compile import CompiledPipeline, OpsCollector, compile_ops

__all__ = [
    "CompiledPipeline",
    "Handle",
    "OpNode",
    "OpsCollector",
    "PortSpec",
    "compile_ops",
    "merge",
    "sink",
    "slot_of",
    "source",
]
