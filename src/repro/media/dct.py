"""8x8 forward and inverse DCT implementations.

The JPEG standard's two-dimensional DCT-II of an 8x8 block ``f`` is::

    F[u,v] = 1/4 C(u) C(v) sum_x sum_y f[x,y]
             cos((2x+1)u*pi/16) cos((2y+1)v*pi/16),   C(0)=1/sqrt(2), else 1

Three forward implementations are provided, all numerically equivalent:

* :func:`naive_dct2` — the quadruple loop straight off the formula.  The
  paper's prototype deliberately uses a naive DCT ("there are versions of
  DCT that can significantly improve performance, such as FastDCT [2]"),
  so this is the reference kernel for the MJPEG workload.
* :func:`matrix_dct2` — the separable form ``M f M^T`` (one matmul pair).
* :func:`aan_dct2` — the Arai–Agui–Nakajima fast DCT of the paper's
  reference [2] (5 multiplies / 29 adds per 1-D transform), vectorized
  over batches of blocks; this is the "FastDCT" ablation.

The inverse (:func:`idct2`) uses the separable form and is exercised by
the JPEG decoder and the property tests (round-trip within float
tolerance).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "dct_matrix",
    "naive_dct2",
    "matrix_dct2",
    "aan_dct2",
    "dct2_blocks",
    "idct2",
    "idct2_blocks",
    "AAN_SCALE",
]


def dct_matrix() -> np.ndarray:
    """The 8x8 orthonormal DCT-II basis matrix ``M`` with
    ``M[u,x] = 1/2 C(u) cos((2x+1)u*pi/16)`` so that ``F = M f M^T``."""
    m = np.zeros((8, 8), dtype=np.float64)
    for u in range(8):
        c = math.sqrt(0.5) if u == 0 else 1.0
        for x in range(8):
            m[u, x] = 0.5 * c * math.cos((2 * x + 1) * u * math.pi / 16.0)
    return m


_M = dct_matrix()
_MT = _M.T.copy()

#: AAN post-scale factors: true coefficient = raw AAN output divided by
#: ``8 * AAN_SCALE[u] * AAN_SCALE[v]`` (libjpeg folds this into the
#: quantization table; we apply it explicitly so all DCTs agree).
AAN_SCALE = np.array(
    [
        1.0,
        1.387039845,
        1.306562965,
        1.175875602,
        1.0,
        0.785694958,
        0.541196100,
        0.275899379,
    ]
)
_AAN_DESCALE = 1.0 / (8.0 * np.outer(AAN_SCALE, AAN_SCALE))


def naive_dct2(block: np.ndarray) -> np.ndarray:
    """Textbook O(N^4) 2-D DCT of one 8x8 block (the paper's kernel)."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (8, 8):
        raise ValueError(f"expected an 8x8 block, got {block.shape}")
    out = np.zeros((8, 8), dtype=np.float64)
    for u in range(8):
        cu = math.sqrt(0.5) if u == 0 else 1.0
        for v in range(8):
            cv = math.sqrt(0.5) if v == 0 else 1.0
            acc = 0.0
            for x in range(8):
                cx = math.cos((2 * x + 1) * u * math.pi / 16.0)
                for y in range(8):
                    acc += (
                        block[x, y]
                        * cx
                        * math.cos((2 * y + 1) * v * math.pi / 16.0)
                    )
            out[u, v] = 0.25 * cu * cv * acc
    return out


def matrix_dct2(block: np.ndarray) -> np.ndarray:
    """Separable-matrix 2-D DCT: ``M f M^T``."""
    block = np.asarray(block, dtype=np.float64)
    return _M @ block @ _MT


def _aan_1d(d: np.ndarray, axis: int) -> np.ndarray:
    """One AAN butterfly pass along ``axis`` of a (..., 8, 8) batch."""
    d = np.moveaxis(d, axis, -1)
    d0, d1, d2, d3, d4, d5, d6, d7 = (d[..., i] for i in range(8))

    tmp0 = d0 + d7
    tmp7 = d0 - d7
    tmp1 = d1 + d6
    tmp6 = d1 - d6
    tmp2 = d2 + d5
    tmp5 = d2 - d5
    tmp3 = d3 + d4
    tmp4 = d3 - d4

    tmp10 = tmp0 + tmp3
    tmp13 = tmp0 - tmp3
    tmp11 = tmp1 + tmp2
    tmp12 = tmp1 - tmp2

    out = np.empty_like(d)
    out[..., 0] = tmp10 + tmp11
    out[..., 4] = tmp10 - tmp11

    z1 = (tmp12 + tmp13) * 0.707106781
    out[..., 2] = tmp13 + z1
    out[..., 6] = tmp13 - z1

    tmp10 = tmp4 + tmp5
    tmp11 = tmp5 + tmp6
    tmp12 = tmp6 + tmp7

    z5 = (tmp10 - tmp12) * 0.382683433
    z2 = 0.541196100 * tmp10 + z5
    z4 = 1.306562965 * tmp12 + z5
    z3 = tmp11 * 0.707106781

    z11 = tmp7 + z3
    z13 = tmp7 - z3

    out[..., 5] = z13 + z2
    out[..., 3] = z13 - z2
    out[..., 1] = z11 + z4
    out[..., 7] = z11 - z4
    return np.moveaxis(out, -1, axis)


def aan_dct2(blocks: np.ndarray) -> np.ndarray:
    """AAN fast 2-D DCT of one block or a batch ``(..., 8, 8)``.

    Matches :func:`matrix_dct2` to float precision after the explicit
    descale (libjpeg instead folds the descale into quantization).
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.shape[-2:] != (8, 8):
        raise ValueError(f"expected (..., 8, 8), got {blocks.shape}")
    out = _aan_1d(blocks, axis=-1)
    out = _aan_1d(out, axis=-2)
    return out * _AAN_DESCALE


def dct2_blocks(blocks: np.ndarray, method: str = "matrix") -> np.ndarray:
    """Forward DCT of a batch ``(..., 8, 8)`` with a selectable method
    (``"naive"``, ``"matrix"``, ``"aan"``)."""
    blocks = np.asarray(blocks, dtype=np.float64)
    if method == "matrix":
        # Per-block matmuls in a loop, NOT one batched matmul: batched
        # BLAS may reassociate differently from the single-block call,
        # and a 1e-14 coefficient difference can flip a round-at-0.5
        # quantization step.  Bit-identical results whether a kernel
        # transforms one macro-block or the baseline does a whole plane
        # matter more here than batch throughput (use "aan" for speed —
        # its elementwise pipeline is batch-shape-invariant).
        if blocks.ndim == 2:
            return _M @ blocks @ _MT
        flat = blocks.reshape(-1, 8, 8)
        out = np.empty_like(flat)
        for i in range(flat.shape[0]):
            out[i] = _M @ flat[i] @ _MT
        return out.reshape(blocks.shape)
    if method == "aan":
        return aan_dct2(blocks)
    if method == "naive":
        flat = blocks.reshape(-1, 8, 8)
        out = np.stack([naive_dct2(b) for b in flat])
        return out.reshape(blocks.shape)
    raise ValueError(f"unknown DCT method {method!r}")


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of one 8x8 coefficient block: ``M^T F M``."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    return _MT @ coeffs @ _M


def idct2_blocks(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of a batch ``(..., 8, 8)``."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape[-2:] != (8, 8):
        raise ValueError(f"expected (..., 8, 8), got {coeffs.shape}")
    return _MT @ (coeffs @ _M)
