"""Baseline JPEG encoder and decoder (ISO/IEC 10918-1 subset).

The encoder produces interchange-format JFIF files for 4:2:0 YUV input
using the Annex-K quantization and Huffman tables; the decoder parses
everything the encoder emits (and generic baseline 3-component scans),
so every encode is verified by a real decode + PSNR check rather than by
trusting the bit-writer.

The stage split mirrors the paper's MJPEG kernels: block preparation and
DCT/quantization (:func:`quantize_plane`) are what the ``yDCT``/
``uDCT``/``vDCT`` kernels do per macro-block, and the entropy scan
(:func:`encode_scan`, driven from :func:`encode_from_quantized`) is the
``VLC + write`` kernel.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

import numpy as np

from .bitstream import BitReader, BitWriter
from .dct import dct2_blocks, idct2_blocks
from .huffman import (
    HuffmanTable,
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    decode_block,
    encode_block,
)
from .quant import (
    STD_CHROMA_QTABLE,
    STD_LUMA_QTABLE,
    dequantize,
    quantize,
    scale_qtable,
)
from .yuv import YUVFrame
from .zigzag import inverse_zigzag, zigzag

__all__ = [
    "encode_jpeg",
    "decode_jpeg",
    "decode_to_coefficients",
    "reconstruct_plane",
    "encode_from_quantized",
    "quantize_plane",
    "pad_plane",
    "plane_to_blocks",
    "blocks_to_plane",
    "qtables_for_quality",
    "DecodedJPEG",
    "DecodedCoefficients",
]

# Marker bytes
SOI = 0xD8
EOI = 0xD9
SOF0 = 0xC0
DHT = 0xC4
DQT = 0xDB
SOS = 0xDA
APP0 = 0xE0
COM = 0xFE


# ----------------------------------------------------------------------
# Block helpers
# ----------------------------------------------------------------------
def pad_plane(plane: np.ndarray, multiple: int) -> np.ndarray:
    """Edge-replicate ``plane`` so both dimensions are multiples of
    ``multiple`` (JPEG pads partial blocks; replication minimizes ringing
    at the padded border)."""
    h, w = plane.shape
    ph = (-h) % multiple
    pw = (-w) % multiple
    if not ph and not pw:
        return plane
    return np.pad(plane, ((0, ph), (0, pw)), mode="edge")


def plane_to_blocks(plane: np.ndarray) -> np.ndarray:
    """Tile an (H, W) plane (H, W multiples of 8) into (H/8, W/8, 8, 8)."""
    h, w = plane.shape
    if h % 8 or w % 8:
        raise ValueError(f"plane {plane.shape} not a multiple of 8")
    return (
        plane.reshape(h // 8, 8, w // 8, 8).swapaxes(1, 2)
    )


def blocks_to_plane(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`plane_to_blocks`."""
    bh, bw = blocks.shape[:2]
    return blocks.swapaxes(1, 2).reshape(bh * 8, bw * 8)


def quantize_plane(
    plane: np.ndarray, qtable: np.ndarray, method: str = "matrix"
) -> np.ndarray:
    """Level-shift, DCT and quantize a plane; returns an int32 block grid
    (H/8, W/8, 8, 8).  This is exactly the per-macro-block work of the
    paper's DCT kernels."""
    blocks = plane_to_blocks(
        np.asarray(plane, dtype=np.float64) - 128.0
    )
    coeffs = dct2_blocks(blocks, method=method)
    return quantize(coeffs, qtable)


def qtables_for_quality(quality: int) -> tuple[np.ndarray, np.ndarray]:
    """(luma, chroma) quantization tables at a libjpeg-style quality."""
    return (
        scale_qtable(STD_LUMA_QTABLE, quality),
        scale_qtable(STD_CHROMA_QTABLE, quality),
    )


# ----------------------------------------------------------------------
# Header emission
# ----------------------------------------------------------------------
def _marker(code: int, payload: bytes = b"") -> bytes:
    if payload:
        return struct.pack(">BBH", 0xFF, code, len(payload) + 2) + payload
    return struct.pack(">BB", 0xFF, code)


def _dqt_segment(table: np.ndarray, table_id: int) -> bytes:
    zz = zigzag(np.asarray(table, dtype=np.int64)).astype(np.uint8)
    return _marker(DQT, bytes([table_id]) + zz.tobytes())


def _dht_segment(table: HuffmanTable, table_class: int, table_id: int) -> bytes:
    payload = bytes([(table_class << 4) | table_id])
    payload += bytes(table.bits)
    payload += bytes(table.values)
    return _marker(DHT, payload)


def _sof0_segment(width: int, height: int) -> bytes:
    payload = struct.pack(">BHHB", 8, height, width, 3)
    payload += bytes([1, 0x22, 0])  # Y: 2x2 sampling, qtable 0
    payload += bytes([2, 0x11, 1])  # Cb: 1x1, qtable 1
    payload += bytes([3, 0x11, 1])  # Cr: 1x1, qtable 1
    return _marker(SOF0, payload)


def _sos_segment() -> bytes:
    payload = bytes([3, 1, 0x00, 2, 0x11, 3, 0x11, 0, 63, 0])
    return _marker(SOS, payload)


def _app0_segment() -> bytes:
    return _marker(
        APP0, b"JFIF\x00" + bytes([1, 1, 0]) + struct.pack(">HH", 1, 1)
        + bytes([0, 0])
    )


# ----------------------------------------------------------------------
# Scan encoding
# ----------------------------------------------------------------------
def encode_scan(
    yq: np.ndarray, uq: np.ndarray, vq: np.ndarray
) -> bytes:
    """Entropy-encode quantized block grids as one interleaved 4:2:0
    baseline scan.  ``yq`` is (BH, BW, 8, 8) with BH, BW even; chroma
    grids are (BH/2, BW/2, 8, 8)."""
    ybh, ybw = yq.shape[:2]
    if ybh % 2 or ybw % 2:
        raise ValueError(
            f"luma block grid {ybh}x{ybw} must be even for 4:2:0 MCUs"
        )
    cbh, cbw = uq.shape[:2]
    if (cbh, cbw) != (ybh // 2, ybw // 2) or vq.shape[:2] != (cbh, cbw):
        raise ValueError("chroma block grids must be half the luma grid")
    yzz = zigzag(np.asarray(yq, dtype=np.int64))
    uzz = zigzag(np.asarray(uq, dtype=np.int64))
    vzz = zigzag(np.asarray(vq, dtype=np.int64))
    writer = BitWriter(stuffing=True)
    dc_y = dc_u = dc_v = 0
    for my in range(ybh // 2):
        for mx in range(ybw // 2):
            for r in range(2):
                for c in range(2):
                    dc_y = encode_block(
                        writer, yzz[my * 2 + r, mx * 2 + c],
                        dc_y, STD_DC_LUMA, STD_AC_LUMA,
                    )
            dc_u = encode_block(
                writer, uzz[my, mx], dc_u, STD_DC_CHROMA, STD_AC_CHROMA
            )
            dc_v = encode_block(
                writer, vzz[my, mx], dc_v, STD_DC_CHROMA, STD_AC_CHROMA
            )
    writer.flush()
    return writer.getvalue()


def encode_from_quantized(
    yq: np.ndarray,
    uq: np.ndarray,
    vq: np.ndarray,
    width: int,
    height: int,
    qy: np.ndarray,
    qc: np.ndarray,
) -> bytes:
    """Assemble a complete JFIF file from already-quantized block grids
    (the ``VLC + write`` kernel's job in the P2G pipeline)."""
    out = bytearray()
    out += _marker(SOI)
    out += _app0_segment()
    out += _dqt_segment(qy, 0)
    out += _dqt_segment(qc, 1)
    out += _sof0_segment(width, height)
    out += _dht_segment(STD_DC_LUMA, 0, 0)
    out += _dht_segment(STD_AC_LUMA, 1, 0)
    out += _dht_segment(STD_DC_CHROMA, 0, 1)
    out += _dht_segment(STD_AC_CHROMA, 1, 1)
    out += _sos_segment()
    out += encode_scan(yq, uq, vq)
    out += _marker(EOI)
    return bytes(out)


def encode_jpeg(
    frame: YUVFrame, quality: int = 75, method: str = "matrix"
) -> bytes:
    """Encode one YUV 4:2:0 frame to a baseline JFIF byte string."""
    qy, qc = qtables_for_quality(quality)
    ypad = pad_plane(frame.y, 16)
    upad = pad_plane(frame.u, 8)
    vpad = pad_plane(frame.v, 8)
    yq = quantize_plane(ypad, qy, method)
    uq = quantize_plane(upad, qc, method)
    vq = quantize_plane(vpad, qc, method)
    return encode_from_quantized(
        yq, uq, vq, frame.width, frame.height, qy, qc
    )


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
@dataclass
class _Component:
    comp_id: int
    h: int
    v: int
    qtable_id: int
    dc_table_id: int = 0
    ac_table_id: int = 0


@dataclass
class DecodedJPEG:
    """Decoder output: reconstructed frame plus the parsed tables (used
    by the tests to confirm header round-trips)."""

    frame: YUVFrame
    qtables: dict[int, np.ndarray]
    width: int
    height: int
    sampling: tuple[tuple[int, int], ...]


@dataclass
class DecodedCoefficients:
    """Entropy-decode output *before* dequantization/IDCT: quantized
    coefficient block grids per component, plus the tables needed to
    finish reconstruction.  This is the hand-off point between the P2G
    MJPEG decoder's serial VLD kernel and its data-parallel IDCT
    kernels."""

    grids: list[np.ndarray]  #: per component: (BH, BW, 8, 8) int64
    qtables: dict[int, np.ndarray]
    qtable_ids: tuple[int, ...]  #: per component
    width: int
    height: int
    sampling: tuple[tuple[int, int], ...]

    def component_size(self, index: int) -> tuple[int, int]:
        """(height, width) of a component's visible pixels."""
        hmax = max(h for h, _v in self.sampling)
        vmax = max(v for _h, v in self.sampling)
        h, v = self.sampling[index]
        return (
            math.ceil(self.height * v / vmax),
            math.ceil(self.width * h / hmax),
        )


def decode_to_coefficients(data: bytes) -> DecodedCoefficients:
    """Parse headers and entropy-decode a baseline, 3-component,
    interleaved-scan JFIF file to quantized coefficient grids.

    Supports the encoder's 4:2:0 output and, generically, any baseline
    sampling whose chroma planes subsample both directions equally.
    """
    if data[:2] != b"\xff\xd8":
        raise ValueError("not a JPEG (missing SOI)")
    pos = 2
    qtables: dict[int, np.ndarray] = {}
    htables: dict[tuple[int, int], HuffmanTable] = {}
    comps: list[_Component] = []
    width = height = 0
    scan_data = b""
    while pos < len(data):
        if data[pos] != 0xFF:
            raise ValueError(f"expected marker at offset {pos}")
        code = data[pos + 1]
        pos += 2
        if code == EOI:
            break
        if code in (SOI,) or 0xD0 <= code <= 0xD7:
            continue  # parameterless markers
        (seg_len,) = struct.unpack(">H", data[pos : pos + 2])
        payload = data[pos + 2 : pos + seg_len]
        pos += seg_len
        if code == DQT:
            off = 0
            while off < len(payload):
                pq_tq = payload[off]
                if pq_tq >> 4:
                    raise ValueError("16-bit quant tables not baseline")
                zz = np.frombuffer(
                    payload[off + 1 : off + 65], dtype=np.uint8
                ).astype(np.int64)
                qtables[pq_tq & 0x0F] = inverse_zigzag(zz).astype(np.int32)
                off += 65
        elif code == DHT:
            off = 0
            while off < len(payload):
                tc_th = payload[off]
                bits = list(payload[off + 1 : off + 17])
                n = sum(bits)
                values = list(payload[off + 17 : off + 17 + n])
                htables[(tc_th >> 4, tc_th & 0x0F)] = HuffmanTable(
                    bits, values
                )
                off += 17 + n
        elif code == SOF0:
            precision, height, width, ncomp = struct.unpack(
                ">BHHB", payload[:6]
            )
            if precision != 8 or ncomp != 3:
                raise ValueError("only 8-bit 3-component baseline supported")
            comps = []
            for i in range(ncomp):
                cid, hv, tq = payload[6 + 3 * i : 9 + 3 * i]
                comps.append(_Component(cid, hv >> 4, hv & 0x0F, tq))
        elif code in (0xC1, 0xC2, 0xC3):
            raise ValueError("non-baseline SOF not supported")
        elif code == SOS:
            ns = payload[0]
            for i in range(ns):
                cid = payload[1 + 2 * i]
                tdta = payload[2 + 2 * i]
                for comp in comps:
                    if comp.comp_id == cid:
                        comp.dc_table_id = tdta >> 4
                        comp.ac_table_id = tdta & 0x0F
            # entropy data runs until the next real marker (EOI here)
            end = len(data) - 2
            scan_data = data[pos:end]
            pos = end
        # other segments (APP0, COM, ...) are skipped
    if not comps or not scan_data:
        raise ValueError("incomplete JPEG (missing SOF/SOS)")

    hmax = max(c.h for c in comps)
    vmax = max(c.v for c in comps)
    mcus_x = math.ceil(width / (8 * hmax))
    mcus_y = math.ceil(height / (8 * vmax))
    grids = {
        c.comp_id: np.zeros(
            (mcus_y * c.v, mcus_x * c.h, 8, 8), dtype=np.int64
        )
        for c in comps
    }
    reader = BitReader(scan_data, stuffing=True)
    prev_dc = {c.comp_id: 0 for c in comps}
    for my in range(mcus_y):
        for mx in range(mcus_x):
            for c in comps:
                dc_t = htables[(0, c.dc_table_id)]
                ac_t = htables[(1, c.ac_table_id)]
                for r in range(c.v):
                    for cc in range(c.h):
                        zz, dc = decode_block(
                            reader, prev_dc[c.comp_id], dc_t, ac_t
                        )
                        prev_dc[c.comp_id] = dc
                        grids[c.comp_id][
                            my * c.v + r, mx * c.h + cc
                        ] = inverse_zigzag(zz)

    return DecodedCoefficients(
        grids=[grids[c.comp_id] for c in comps],
        qtables=qtables,
        qtable_ids=tuple(c.qtable_id for c in comps),
        width=width,
        height=height,
        sampling=tuple((c.h, c.v) for c in comps),
    )


def reconstruct_plane(
    grid: np.ndarray, qtable: np.ndarray, size: tuple[int, int]
) -> np.ndarray:
    """Dequantize + IDCT + level-shift one coefficient grid and crop to
    the visible ``(height, width)`` — the P2G IDCT kernels' math."""
    coeffs = dequantize(grid, qtable)
    pix = idct2_blocks(coeffs) + 128.0
    plane = blocks_to_plane(np.clip(np.round(pix), 0, 255))
    return plane[: size[0], : size[1]].astype(np.uint8)


def decode_jpeg(data: bytes) -> DecodedJPEG:
    """Fully decode a baseline JFIF file (see
    :func:`decode_to_coefficients` for supported features)."""
    dec = decode_to_coefficients(data)
    planes = [
        reconstruct_plane(
            grid, dec.qtables[dec.qtable_ids[i]], dec.component_size(i)
        )
        for i, grid in enumerate(dec.grids)
    ]
    return DecodedJPEG(
        frame=YUVFrame(planes[0], planes[1], planes[2]),
        qtables=dec.qtables,
        width=dec.width,
        height=dec.height,
        sampling=dec.sampling,
    )
