"""JPEG Huffman entropy coding (ISO/IEC 10918-1, Annex K.3 tables).

Implements canonical Huffman code construction from the (BITS, HUFFVAL)
representation used by the DHT marker, the standard luminance and
chrominance DC/AC tables, and the block-level run-length + magnitude
coding of quantized zig-zag coefficients (the "VLC" in the paper's
``VLC + write`` kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = [
    "HuffmanTable",
    "STD_DC_LUMA",
    "STD_DC_CHROMA",
    "STD_AC_LUMA",
    "STD_AC_CHROMA",
    "magnitude_category",
    "encode_block",
    "encode_block_scalar",
    "decode_block",
]


class HuffmanTable:
    """A canonical JPEG Huffman table.

    Parameters
    ----------
    bits:
        16 counts — number of codes of length 1..16 (DHT ``BITS``).
    values:
        Symbols in code order (DHT ``HUFFVAL``).
    """

    def __init__(self, bits: Sequence[int], values: Sequence[int]) -> None:
        bits = list(bits)
        values = list(values)
        if len(bits) != 16:
            raise ValueError(f"BITS must have 16 entries, got {len(bits)}")
        if sum(bits) != len(values):
            raise ValueError(
                f"BITS claims {sum(bits)} codes but {len(values)} values "
                f"were given"
            )
        self.bits = tuple(bits)
        self.values = tuple(values)
        self._arrays: tuple[np.ndarray, np.ndarray] | None = None
        self._lists: tuple[list[int], list[int]] | None = None
        # Canonical code assignment (spec C.2): codes of equal length are
        # consecutive; moving to the next length left-shifts.
        self._encode: dict[int, tuple[int, int]] = {}
        code = 0
        k = 0
        #: per length (1-based): (min_code, max_code, first_value_index)
        self._decode: list[tuple[int, int, int] | None] = [None] * 17
        for length in range(1, 17):
            n = bits[length - 1]
            if n:
                self._decode[length] = (code, code + n - 1, k)
                for _ in range(n):
                    symbol = values[k]
                    if symbol in self._encode:
                        raise ValueError(f"duplicate symbol {symbol:#x}")
                    self._encode[symbol] = (code, length)
                    code += 1
                    k += 1
            code <<= 1

    def encode(self, symbol: int) -> tuple[int, int]:
        """(code, bit length) for ``symbol``."""
        try:
            return self._encode[symbol]
        except KeyError:
            raise ValueError(
                f"symbol {symbol:#x} not in Huffman table"
            ) from None

    def write_symbol(self, writer: BitWriter, symbol: int) -> None:
        """Encode ``symbol`` into the bit stream."""
        code, length = self.encode(symbol)
        writer.write_bits(code, length)

    def code_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(codes, lengths)`` indexed by symbol value (0..255).

        A zero length marks a symbol absent from the table.  Cached —
        this is the lookup structure the vectorized block encoder uses
        instead of a per-symbol dict probe.
        """
        if self._arrays is None:
            codes = np.zeros(256, dtype=np.int64)
            lengths = np.zeros(256, dtype=np.int64)
            for symbol, (code, length) in self._encode.items():
                codes[symbol] = code
                lengths[symbol] = length
            self._arrays = (codes, lengths)
        return self._arrays

    def code_lists(self) -> tuple[list[int], list[int]]:
        """:meth:`code_arrays` as plain lists — O(1) int indexing with
        no per-element NumPy scalar boxing, which is what the block
        encoder's hot loop wants."""
        if self._lists is None:
            codes, lengths = self.code_arrays()
            self._lists = (codes.tolist(), lengths.tolist())
        return self._lists

    def read_symbol(self, reader: BitReader) -> int:
        """Decode one symbol bit by bit (spec F.2.2.3 DECODE procedure)."""
        code = 0
        for length in range(1, 17):
            code = (code << 1) | reader.read_bit()
            rng = self._decode[length]
            if rng is not None and rng[0] <= code <= rng[1]:
                return self.values[rng[2] + (code - rng[0])]
        raise ValueError("invalid Huffman code in stream")

    def __len__(self) -> int:
        return len(self.values)


# ----------------------------------------------------------------------
# Annex K.3 standard tables
# ----------------------------------------------------------------------
STD_DC_LUMA = HuffmanTable(
    bits=[0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0],
    values=list(range(12)),
)

STD_DC_CHROMA = HuffmanTable(
    bits=[0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0],
    values=list(range(12)),
)

STD_AC_LUMA = HuffmanTable(
    bits=[0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D],
    values=[
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
        0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
        0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
        0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
        0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
        0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
        0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
        0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
        0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
        0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
        0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
        0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
        0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
        0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
        0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
        0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
        0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
        0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
        0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ],
)

STD_AC_CHROMA = HuffmanTable(
    bits=[0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77],
    values=[
        0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
        0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
        0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
        0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
        0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
        0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
        0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
        0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
        0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
        0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
        0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
        0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
        0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
        0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
        0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
        0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
        0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
        0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
        0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
        0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ],
)


# ----------------------------------------------------------------------
# Coefficient coding (spec F.1.2 / F.2.2)
# ----------------------------------------------------------------------
def magnitude_category(value: int) -> int:
    """SSSS — number of bits needed for the magnitude of ``value``."""
    return int(abs(int(value))).bit_length()


def _magnitude_bits(value: int, category: int) -> int:
    """Appended magnitude bits: value itself for positives, value - 1 in
    two's complement (low ``category`` bits) for negatives."""
    value = int(value)
    if value >= 0:
        return value
    return (value - 1) & ((1 << category) - 1)


def _extend(bits: int, category: int) -> int:
    """Inverse of :func:`_magnitude_bits` (spec EXTEND procedure)."""
    if category == 0:
        return 0
    if bits < (1 << (category - 1)):
        return bits - (1 << category) + 1
    return bits


def encode_block_scalar(
    writer: BitWriter,
    zz: np.ndarray,
    prev_dc: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> int:
    """Reference coefficient-at-a-time block encoder (spec F.1.2 read
    literally).  Kept as the parity oracle and micro-benchmark baseline
    for the vectorized :func:`encode_block`."""
    zz = np.asarray(zz, dtype=np.int64)
    if zz.shape != (64,):
        raise ValueError(f"expected 64 zig-zag coefficients, got {zz.shape}")
    dc = int(zz[0])
    diff = dc - prev_dc
    cat = magnitude_category(diff)
    if cat > 11:
        raise ValueError(f"DC difference {diff} out of baseline range")
    dc_table.write_symbol(writer, cat)
    if cat:
        writer.write_bits(_magnitude_bits(diff, cat), cat)

    run = 0
    for k in range(1, 64):
        coef = int(zz[k])
        if coef == 0:
            run += 1
            continue
        while run > 15:
            ac_table.write_symbol(writer, 0xF0)  # ZRL: 16 zeros
            run -= 16
        cat = magnitude_category(coef)
        if cat > 10:
            raise ValueError(f"AC coefficient {coef} out of baseline range")
        ac_table.write_symbol(writer, (run << 4) | cat)
        writer.write_bits(_magnitude_bits(coef, cat), cat)
        run = 0
    if run:
        ac_table.write_symbol(writer, 0x00)  # EOB
    return dc


def encode_block(
    writer: BitWriter,
    zz: np.ndarray,
    prev_dc: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> int:
    """Entropy-encode one zig-zag block; returns the block's DC value
    (the caller threads it as the next block's predictor).

    Optimized, bit-identical to :func:`encode_block_scalar`: the block
    converts to native ints in one batch, symbol codes/lengths come from
    the table's precomputed flat lookup lists instead of per-symbol dict
    probes, and the whole block's bits accumulate into one arbitrary-
    precision integer emitted with a single ``write_bits`` call (one
    byte-stuffing pass per block rather than two per coefficient).
    """
    zz = np.asarray(zz, dtype=np.int64)
    if zz.shape != (64,):
        raise ValueError(f"expected 64 zig-zag coefficients, got {zz.shape}")
    vals = zz.tolist()
    dc = vals[0]
    diff = dc - prev_dc
    cat = abs(diff).bit_length()
    if cat > 11:
        raise ValueError(f"DC difference {diff} out of baseline range")
    acc, nbits = dc_table.encode(cat)
    if cat:
        acc = (acc << cat) | (
            diff if diff >= 0 else (diff - 1) & ((1 << cat) - 1)
        )
        nbits += cat

    ac_codes, ac_lens = ac_table.code_lists()
    zrl_code, zrl_len = ac_table.encode(0xF0)
    run = 0
    for coef in vals[1:]:
        if coef == 0:
            run += 1
            continue
        while run > 15:
            acc = (acc << zrl_len) | zrl_code  # ZRL: 16 zeros
            nbits += zrl_len
            run -= 16
        cat = (coef if coef >= 0 else -coef).bit_length()
        if cat > 10:
            raise ValueError(
                f"AC coefficient {coef} out of baseline range"
            )
        symbol = (run << 4) | cat
        length = ac_lens[symbol]
        if not length:
            raise ValueError(f"symbol {symbol:#x} not in Huffman table")
        acc = (
            (acc << (length + cat))
            | (ac_codes[symbol] << cat)
            | (coef if coef >= 0 else (coef - 1) & ((1 << cat) - 1))
        )
        nbits += length + cat
        run = 0
    if run:
        code, length = ac_table.encode(0x00)  # EOB
        acc = (acc << length) | code
        nbits += length
    writer.write_bits(acc, nbits)
    return dc


def decode_block(
    reader: BitReader,
    prev_dc: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> tuple[np.ndarray, int]:
    """Decode one block; returns (zig-zag coefficients, DC value)."""
    zz = np.zeros(64, dtype=np.int64)
    cat = dc_table.read_symbol(reader)
    diff = _extend(reader.read_bits(cat), cat) if cat else 0
    dc = prev_dc + diff
    zz[0] = dc
    k = 1
    while k < 64:
        symbol = ac_table.read_symbol(reader)
        if symbol == 0x00:  # EOB
            break
        if symbol == 0xF0:  # ZRL
            k += 16
            continue
        run = symbol >> 4
        cat = symbol & 0x0F
        k += run
        if k >= 64:
            raise ValueError("AC run overflows block")
        zz[k] = _extend(reader.read_bits(cat), cat)
        k += 1
    return zz, dc
