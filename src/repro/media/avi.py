"""Motion-JPEG AVI container (RIFF ``AVI `` with an ``MJPG`` stream).

The raw concatenated-JPEG stream of :mod:`repro.media.mjpeg` is the
paper's on-disk format; wrapping it in the classic AVI 1.0 structure
(``hdrl`` headers + ``movi`` chunks + ``idx1`` index) makes the encoder
output playable in ordinary media players.  Writer and reader are
implemented from the RIFF layout directly; both round-trip the exact
JPEG payloads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

__all__ = ["write_avi", "read_avi", "AVIInfo"]


def _chunk(fourcc: bytes, payload: bytes) -> bytes:
    """A RIFF chunk: fourcc, little-endian size, payload, even padding."""
    data = struct.pack("<4sI", fourcc, len(payload)) + payload
    if len(payload) % 2:
        data += b"\x00"
    return data


def _list(list_type: bytes, payload: bytes) -> bytes:
    return _chunk(b"LIST", list_type + payload)


@dataclass(frozen=True)
class AVIInfo:
    """Parsed AVI metadata."""

    width: int
    height: int
    fps: float
    frame_count: int
    codec: str


def write_avi(
    target: str | Path | None,
    jpeg_frames: Sequence[bytes],
    width: int,
    height: int,
    fps: float = 25.0,
) -> bytes:
    """Build an AVI file from encoded JPEG frames.

    Returns the bytes (and writes them to ``target`` when given).
    """
    if not jpeg_frames:
        raise ValueError("cannot write an AVI with zero frames")
    if fps <= 0:
        raise ValueError(f"fps must be positive, got {fps}")
    for i, f in enumerate(jpeg_frames):
        if f[:2] != b"\xff\xd8":
            raise ValueError(f"frame {i} is not a JPEG (missing SOI)")
    n = len(jpeg_frames)
    usec_per_frame = int(round(1_000_000 / fps))
    max_bytes = max(len(f) for f in jpeg_frames)

    # --- avih: main AVI header (56 bytes) ---------------------------------
    avih = struct.pack(
        "<IIIIIIIIIIIIII",
        usec_per_frame,          # dwMicroSecPerFrame
        max_bytes * int(fps),    # dwMaxBytesPerSec (approximate)
        0,                       # dwPaddingGranularity
        0x10,                    # dwFlags: AVIF_HASINDEX
        n,                       # dwTotalFrames
        0,                       # dwInitialFrames
        1,                       # dwStreams
        max_bytes,               # dwSuggestedBufferSize
        width,
        height,
        0, 0, 0, 0,              # dwReserved[4]
    )

    # --- strh: stream header (56 bytes) -----------------------------------
    strh = struct.pack(
        "<4s4sIHHIIIIIIIIhhhh",
        b"vids",                 # fccType
        b"MJPG",                 # fccHandler
        0,                       # dwFlags
        0, 0,                    # wPriority, wLanguage
        0,                       # dwInitialFrames
        usec_per_frame,          # dwScale
        1_000_000,               # dwRate (rate/scale = fps)
        0,                       # dwStart
        n,                       # dwLength
        max_bytes,               # dwSuggestedBufferSize
        0xFFFFFFFF & -1,         # dwQuality (-1 = default)
        0,                       # dwSampleSize (0 = variable)
        0, 0, width, height,     # rcFrame
    )

    # --- strf: BITMAPINFOHEADER (40 bytes) --------------------------------
    strf = struct.pack(
        "<IiiHH4sIiiII",
        40,                      # biSize
        width,
        height,
        1,                       # biPlanes
        24,                      # biBitCount
        b"MJPG",                 # biCompression
        width * height * 3,      # biSizeImage (nominal)
        0, 0, 0, 0,              # resolutions, colours
    )

    hdrl = _list(
        b"hdrl",
        _chunk(b"avih", avih)
        + _list(b"strl", _chunk(b"strh", strh) + _chunk(b"strf", strf)),
    )

    # --- movi + idx1 -------------------------------------------------------
    movi_payload = bytearray()
    index_entries = []
    for frame in jpeg_frames:
        # offset is relative to the start of the 'movi' list type fourcc
        offset = 4 + len(movi_payload)
        movi_payload += _chunk(b"00dc", frame)
        index_entries.append((offset, len(frame)))
    movi = _list(b"movi", bytes(movi_payload))
    idx1 = _chunk(
        b"idx1",
        b"".join(
            struct.pack("<4sIII", b"00dc", 0x10, off, size)
            for off, size in index_entries
        ),
    )

    riff_payload = b"AVI " + hdrl + movi + idx1
    data = struct.pack("<4sI", b"RIFF", len(riff_payload)) + riff_payload
    if target is not None:
        Path(target).write_bytes(data)
    return data


def read_avi(source: str | Path | bytes) -> tuple[AVIInfo, list[bytes]]:
    """Parse an MJPG AVI; returns (info, jpeg frames)."""
    data = (Path(source).read_bytes()
            if isinstance(source, (str, Path)) else bytes(source))
    if data[:4] != b"RIFF" or data[8:12] != b"AVI ":
        raise ValueError("not a RIFF/AVI file")

    width = height = 0
    fps = 0.0
    codec = ""
    frames: list[bytes] = []

    def walk(buf: bytes, pos: int, end: int) -> None:
        nonlocal width, height, fps, codec
        while pos + 8 <= end:
            fourcc, size = struct.unpack_from("<4sI", buf, pos)
            body_start = pos + 8
            body_end = body_start + size
            if fourcc == b"LIST":
                walk(buf, body_start + 4, body_end)
            elif fourcc == b"avih":
                vals = struct.unpack_from("<IIIIIIIIII", buf, body_start)
                if vals[0]:
                    fps = 1_000_000 / vals[0]
                width, height = vals[8], vals[9]
            elif fourcc == b"strh":
                codec = buf[body_start + 4 : body_start + 8].decode(
                    "ascii", "replace"
                )
            elif fourcc == b"00dc":
                frames.append(buf[body_start:body_end])
            pos = body_end + (size % 2)

    walk(data, 12, 8 + struct.unpack_from("<I", data, 4)[0])
    if codec not in ("MJPG", ""):
        raise ValueError(f"unsupported AVI codec {codec!r}")
    return AVIInfo(width, height, fps, len(frames), codec or "MJPG"), frames
