"""Bit-level I/O with JPEG byte stuffing.

JPEG entropy-coded segments are written MSB-first; any 0xFF byte in the
coded data must be followed by a stuffed 0x00 so decoders can distinguish
data from markers (ISO/IEC 10918-1, B.1.1.5).
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits MSB-first into a byte string.

    With ``stuffing=True`` (the JPEG entropy segment), every emitted 0xFF
    data byte is followed by 0x00.  :meth:`flush` pads the final partial
    byte with 1-bits, as JPEG requires.
    """

    def __init__(self, stuffing: bool = True) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0
        self._stuffing = stuffing

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low bits of ``value``, MSB first."""
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            byte = (self._acc >> self._nbits) & 0xFF
            self._out.append(byte)
            if self._stuffing and byte == 0xFF:
                self._out.append(0x00)
        self._acc &= (1 << self._nbits) - 1

    def flush(self) -> None:
        """Pad to a byte boundary with 1-bits (JPEG convention)."""
        if self._nbits:
            pad = 8 - self._nbits
            self.write_bits((1 << pad) - 1, pad)

    def getvalue(self) -> bytes:
        """The bytes written so far (flush first for a byte boundary)."""
        return bytes(self._out)

    @property
    def bit_length(self) -> int:
        """Total bits written, including the unflushed remainder."""
        return len(self._out) * 8 + self._nbits

    def __len__(self) -> int:
        return len(self._out)


class BitReader:
    """Reads bits MSB-first, transparently removing stuffed 0x00 bytes
    after 0xFF when ``stuffing=True``."""

    def __init__(self, data: bytes, stuffing: bool = True) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0
        self._stuffing = stuffing

    def _pull_byte(self) -> int:
        if self._pos >= len(self._data):
            raise EOFError("bitstream exhausted")
        b = self._data[self._pos]
        self._pos += 1
        if self._stuffing and b == 0xFF:
            if self._pos < len(self._data) and self._data[self._pos] == 0x00:
                self._pos += 1  # swallow the stuffed zero
            else:
                # A real marker inside entropy data (e.g. EOI reached via
                # padding); signal end of stream.
                self._pos -= 1
                raise EOFError("marker encountered in entropy data")
        return b

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits as an unsigned integer."""
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        while self._nbits < nbits:
            self._acc = (self._acc << 8) | self._pull_byte()
            self._nbits += 8
        self._nbits -= nbits
        value = (self._acc >> self._nbits) & ((1 << nbits) - 1)
        self._acc &= (1 << self._nbits) - 1
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    @property
    def byte_position(self) -> int:
        """Consumed input offset in bytes."""
        return self._pos

    def bits_remaining(self) -> int:
        """Lower bound (ignores future stuffed bytes)."""
        return self._nbits + 8 * (len(self._data) - self._pos)
