"""Media substrate for the MJPEG workload.

The paper's prototype encodes Motion JPEG (section VII-B): YUV input is
split into 8x8 macro-blocks, DCT-transformed and quantized (the
compute-intensive part it parallelizes), then variable-length-coded into
a JPEG bit-stream.  This subpackage provides that entire substrate from
scratch:

* :mod:`repro.media.yuv` — YUV frames, planar I/O and the deterministic
  synthetic CIF sequence standing in for the copyrighted *Foreman* clip;
* :mod:`repro.media.dct` — naive (the paper's choice), separable-matrix
  and AAN "FastDCT" (the paper's reference [2]) 8x8 transforms + IDCT;
* :mod:`repro.media.quant` / :mod:`repro.media.zigzag` — JPEG Annex-K
  quantization and zig-zag ordering;
* :mod:`repro.media.bitstream` / :mod:`repro.media.huffman` — bit-level
  I/O with JPEG byte stuffing and the Annex-K Huffman code tables;
* :mod:`repro.media.jpeg` — a complete baseline JPEG encoder *and*
  decoder (the decoder exists to verify encoder output round-trips);
* :mod:`repro.media.mjpeg` — the Motion JPEG stream container.
"""

from .avi import AVIInfo, read_avi, write_avi
from .bitstream import BitReader, BitWriter
from .dct import (
    aan_dct2,
    dct2_blocks,
    idct2,
    idct2_blocks,
    matrix_dct2,
    naive_dct2,
)
from .huffman import (
    HuffmanTable,
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
)
from .jpeg import (
    blocks_to_plane,
    decode_jpeg,
    encode_from_quantized,
    encode_jpeg,
    pad_plane,
    plane_to_blocks,
    qtables_for_quality,
    quantize_plane,
)
from .mjpeg import MJPEGReader, MJPEGWriter, split_frames
from .quant import (
    STD_CHROMA_QTABLE,
    STD_LUMA_QTABLE,
    dequantize,
    quantize,
    scale_qtable,
)
from .yuv import (
    YUVFrame,
    box_downscale,
    psnr,
    read_yuv_file,
    synthetic_sequence,
    write_yuv_file,
)
from .zigzag import ZIGZAG_ORDER, inverse_zigzag, zigzag

__all__ = [
    "AVIInfo",
    "BitReader",
    "box_downscale",
    "BitWriter",
    "HuffmanTable",
    "MJPEGReader",
    "MJPEGWriter",
    "STD_AC_CHROMA",
    "STD_AC_LUMA",
    "STD_CHROMA_QTABLE",
    "STD_DC_CHROMA",
    "STD_DC_LUMA",
    "STD_LUMA_QTABLE",
    "YUVFrame",
    "ZIGZAG_ORDER",
    "aan_dct2",
    "blocks_to_plane",
    "dct2_blocks",
    "decode_jpeg",
    "dequantize",
    "encode_from_quantized",
    "encode_jpeg",
    "pad_plane",
    "plane_to_blocks",
    "qtables_for_quality",
    "quantize_plane",
    "split_frames",
    "idct2",
    "idct2_blocks",
    "inverse_zigzag",
    "matrix_dct2",
    "naive_dct2",
    "psnr",
    "quantize",
    "read_avi",
    "read_yuv_file",
    "scale_qtable",
    "synthetic_sequence",
    "write_avi",
    "write_yuv_file",
    "zigzag",
]
