"""JPEG zig-zag coefficient ordering (ISO/IEC 10918-1, figure 5).

The zig-zag scan orders 8x8 DCT coefficients by increasing spatial
frequency so that the run-length/Huffman stage sees long zero runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZIGZAG_ORDER", "INVERSE_ZIGZAG_ORDER", "zigzag", "inverse_zigzag"]


def _build_order() -> np.ndarray:
    """Walk the 8x8 grid along anti-diagonals, alternating direction."""
    order = []
    for s in range(15):
        diag = [(i, s - i) for i in range(8) if 0 <= s - i < 8]
        if s % 2 == 0:
            diag.reverse()  # even diagonals run bottom-left -> top-right
        order.extend(diag)
    return np.array([r * 8 + c for r, c in order], dtype=np.int64)


#: flat index into an 8x8 block for each zig-zag position
ZIGZAG_ORDER = _build_order()

#: zig-zag position of each flat 8x8 index (the scatter permutation)
INVERSE_ZIGZAG_ORDER = np.argsort(ZIGZAG_ORDER)


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten one 8x8 block (or a batch ``(..., 8, 8)``) into zig-zag
    order ``(..., 64)``."""
    block = np.asarray(block)
    if block.shape[-2:] != (8, 8):
        raise ValueError(f"expected (..., 8, 8), got {block.shape}")
    flat = block.reshape(block.shape[:-2] + (64,))
    return flat[..., ZIGZAG_ORDER]


def inverse_zigzag(seq: np.ndarray) -> np.ndarray:
    """Rebuild 8x8 blocks from zig-zag sequences ``(..., 64)``."""
    seq = np.asarray(seq)
    if seq.shape[-1] != 64:
        raise ValueError(f"expected (..., 64), got {seq.shape}")
    flat = seq[..., INVERSE_ZIGZAG_ORDER]
    return flat.reshape(seq.shape[:-1] + (8, 8))
