"""Motion JPEG stream container.

Motion JPEG in its simplest interchange form is a concatenation of
complete JPEG images (each SOI..EOI); this is what the paper's
``VLC + write`` kernel appends to disk per frame.  The reader splits a
stream back into frames by walking marker structure (not by scanning for
byte patterns, which would be confused by entropy-coded 0xFFD8 byte
pairs — stuffing prevents them, but walking segments is the robust way).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator

__all__ = ["MJPEGWriter", "MJPEGReader", "split_frames"]

_STANDALONE = {0xD8, 0xD9} | set(range(0xD0, 0xD8))  # SOI, EOI, RSTn


def _frame_end(data: bytes, start: int) -> int:
    """Offset one past the EOI of the JPEG starting at ``start``."""
    if data[start : start + 2] != b"\xff\xd8":
        raise ValueError(f"no SOI at offset {start}")
    pos = start + 2
    in_scan = False
    while pos < len(data):
        if not in_scan:
            if data[pos] != 0xFF:
                raise ValueError(f"expected marker at offset {pos}")
            code = data[pos + 1]
            pos += 2
            if code == 0xD9:
                return pos
            if code in _STANDALONE:
                continue
            (seg_len,) = struct.unpack(">H", data[pos : pos + 2])
            if code == 0xDA:
                in_scan = True
            pos += seg_len
        else:
            # skip entropy-coded data: 0xFF followed by a non-stuffing,
            # non-RST byte ends the scan
            if data[pos] == 0xFF and pos + 1 < len(data):
                nxt = data[pos + 1]
                if nxt == 0x00 or 0xD0 <= nxt <= 0xD7:
                    pos += 2
                    continue
                in_scan = False
                continue
            pos += 1
    raise ValueError("truncated JPEG (no EOI)")


def split_frames(data: bytes) -> list[bytes]:
    """Split a concatenated-JPEG byte string into individual frames."""
    frames = []
    pos = 0
    while pos < len(data):
        end = _frame_end(data, pos)
        frames.append(data[pos:end])
        pos = end
    return frames


class MJPEGWriter:
    """Appends JPEG frames to a file or in-memory buffer."""

    def __init__(self, target: str | Path | BinaryIO | None = None) -> None:
        self._own = False
        if target is None:
            import io

            self._fh: BinaryIO = io.BytesIO()
            self._own = True
        elif isinstance(target, (str, Path)):
            self._fh = open(target, "wb")
            self._own = True
        else:
            self._fh = target
        self.frames_written = 0
        self.bytes_written = 0

    def write_frame(self, jpeg_bytes: bytes) -> None:
        """Append one complete JPEG (SOI..EOI) to the stream."""
        if jpeg_bytes[:2] != b"\xff\xd8" or jpeg_bytes[-2:] != b"\xff\xd9":
            raise ValueError("frame is not a complete JPEG (SOI..EOI)")
        self._fh.write(jpeg_bytes)
        self.frames_written += 1
        self.bytes_written += len(jpeg_bytes)

    def getvalue(self) -> bytes:
        """The in-memory stream contents (memory targets only)."""
        getv = getattr(self._fh, "getvalue", None)
        if getv is None:
            raise TypeError("getvalue() only available for memory streams")
        return getv()

    def close(self) -> None:
        """Close the underlying file if this writer opened it."""
        if self._own and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "MJPEGWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MJPEGReader:
    """Iterates JPEG frames out of an MJPEG stream."""

    def __init__(self, source: str | Path | bytes) -> None:
        if isinstance(source, (str, Path)):
            self._data = Path(source).read_bytes()
        else:
            self._data = bytes(source)

    def __iter__(self) -> Iterator[bytes]:
        pos = 0
        while pos < len(self._data):
            end = _frame_end(self._data, pos)
            yield self._data[pos:end]
            pos = end

    def count(self) -> int:
        """Number of frames in the stream."""
        return sum(1 for _ in self)
