"""JPEG quantization (ISO/IEC 10918-1, Annex K tables).

Quantization is the lossy half of the DCT/quantization stage the paper's
MJPEG workload optimizes; the standard example tables and the ubiquitous
libjpeg quality scaling are implemented here.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "STD_LUMA_QTABLE",
    "STD_CHROMA_QTABLE",
    "scale_qtable",
    "quantize",
    "dequantize",
]

#: Annex K.1 — luminance quantization table (quality 50 reference).
STD_LUMA_QTABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int32,
)

#: Annex K.2 — chrominance quantization table.
STD_CHROMA_QTABLE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int32,
)


def scale_qtable(table: np.ndarray, quality: int) -> np.ndarray:
    """libjpeg quality scaling: quality 50 returns the table unchanged,
    100 approaches all-ones, 1 is maximally coarse.  Entries are clamped
    to the baseline-JPEG range [1, 255]."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    scaled = (np.asarray(table, dtype=np.int64) * scale + 50) // 100
    return np.clip(scaled, 1, 255).astype(np.int32)


def quantize(coeffs: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Round DCT coefficients to quantization steps: ``round(F / Q)``.

    Works on one block or a batch ``(..., 8, 8)``; returns int32.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    q = np.asarray(qtable, dtype=np.float64)
    return np.round(coeffs / q).astype(np.int32)


def dequantize(levels: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Reverse quantization: ``level * Q`` (float64 output for the IDCT)."""
    return np.asarray(levels, dtype=np.float64) * np.asarray(
        qtable, dtype=np.float64
    )
