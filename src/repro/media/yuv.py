"""YUV frames, planar file I/O and the synthetic test sequence.

The paper's evaluation encodes 50 CIF (352x288) frames of the standard
*Foreman* test sequence.  Foreman is not redistributable, so
:func:`synthetic_sequence` generates a deterministic CIF clip with
foreman-like properties — smooth regions, textured regions, object
motion and a panning background — which exercises the identical code
path (instance counts and per-block work depend only on geometry, not on
pixel content).  Real ``.yuv`` clips can be substituted via
:func:`read_yuv_file`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "YUVFrame",
    "synthetic_frame",
    "synthetic_noise",
    "synthetic_sequence",
    "read_yuv_file",
    "write_yuv_file",
    "psnr",
    "box_downscale",
    "CIF_WIDTH",
    "CIF_HEIGHT",
]

CIF_WIDTH = 352
CIF_HEIGHT = 288


@dataclass
class YUVFrame:
    """One 4:2:0 frame: full-resolution luma, half-resolution chroma."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y, dtype=np.uint8)
        self.u = np.asarray(self.u, dtype=np.uint8)
        self.v = np.asarray(self.v, dtype=np.uint8)
        h, w = self.y.shape
        ch, cw = (h + 1) // 2, (w + 1) // 2
        if self.u.shape != (ch, cw) or self.v.shape != (ch, cw):
            raise ValueError(
                f"chroma shape {self.u.shape}/{self.v.shape} does not match "
                f"4:2:0 subsampling of {self.y.shape}"
            )

    @property
    def width(self) -> int:
        """Luma width in pixels."""
        return self.y.shape[1]

    @property
    def height(self) -> int:
        """Luma height in pixels."""
        return self.y.shape[0]

    def planes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (y, u, v) planes as a tuple."""
        return self.y, self.u, self.v

    def tobytes(self) -> bytes:
        """Planar I420 layout (Y then U then V)."""
        return self.y.tobytes() + self.u.tobytes() + self.v.tobytes()

    @classmethod
    def frombytes(cls, data: bytes, width: int, height: int) -> "YUVFrame":
        """Parse one planar I420 frame from bytes."""
        ysize = width * height
        csize = (width // 2) * (height // 2)
        if len(data) < ysize + 2 * csize:
            raise ValueError("truncated I420 frame")
        y = np.frombuffer(data[:ysize], dtype=np.uint8).reshape(
            height, width
        )
        u = np.frombuffer(
            data[ysize : ysize + csize], dtype=np.uint8
        ).reshape(height // 2, width // 2)
        v = np.frombuffer(
            data[ysize + csize : ysize + 2 * csize], dtype=np.uint8
        ).reshape(height // 2, width // 2)
        return cls(y.copy(), u.copy(), v.copy())

    @staticmethod
    def frame_size(width: int, height: int) -> int:
        """Bytes of one I420 frame at the given geometry."""
        return width * height + 2 * (width // 2) * (height // 2)


def synthetic_noise(
    width: int = CIF_WIDTH, height: int = CIF_HEIGHT, seed: int = 1234
) -> np.ndarray:
    """The fixed-seed noise plane shared by every frame of the synthetic
    clip (precompute once when generating many frames)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 12, size=(height, width), dtype=np.int32)


def synthetic_frame(
    t: int,
    width: int = CIF_WIDTH,
    height: int = CIF_HEIGHT,
    seed: int = 1234,
    noise: np.ndarray | None = None,
) -> YUVFrame:
    """Frame ``t`` of the synthetic clip.

    Byte-identical to ``synthetic_sequence(n, ...)[t]`` for any
    ``n > t`` — a live source generating frames one at a time produces
    exactly the clip a batch run pre-stores, which is what lets the
    streaming tests assert byte-identical MJPEG output.  Pass a
    precomputed ``noise`` plane (:func:`synthetic_noise`) to amortize
    the RNG across frames.
    """
    if noise is None:
        noise = synthetic_noise(width, height, seed)
    yy, xx = np.mgrid[0:height, 0:width]
    pan = 3 * t
    grad = ((xx + pan) * 255 // (width + pan + 1)).astype(np.int32)
    texture = (
        40 * np.sin(2 * math.pi * (xx + 2 * t) / 16.0)
        * np.sin(2 * math.pi * yy / 24.0)
    ).astype(np.int32)
    y = 64 + grad // 2 + texture // 2 + noise
    sq = 32
    sx = (17 * t) % max(1, width - sq)
    sy = (11 * t) % max(1, height - sq)
    y[sy : sy + sq, sx : sx + sq] += 80
    y = np.clip(y, 0, 255).astype(np.uint8)
    ch, cw = height // 2, width // 2
    cyy, cxx = np.mgrid[0:ch, 0:cw]
    u = np.clip(
        128 + 30 * np.sin(2 * math.pi * (cxx + t) / 64.0), 0, 255
    ).astype(np.uint8)
    v = np.clip(
        128 + 30 * np.cos(2 * math.pi * (cyy + 2 * t) / 48.0), 0, 255
    ).astype(np.uint8)
    return YUVFrame(y, u, v)


def synthetic_sequence(
    frames: int,
    width: int = CIF_WIDTH,
    height: int = CIF_HEIGHT,
    seed: int = 1234,
) -> list[YUVFrame]:
    """Deterministic foreman-like CIF clip.

    Composition per frame ``t`` (see :func:`synthetic_frame`):

    * a slowly panning luma gradient (global motion, like the camera pan);
    * a sinusoidal texture band (high-frequency detail that stresses the
      AC Huffman path);
    * a moving bright square (foreground object motion);
    * low-amplitude fixed-seed noise (keeps quantized blocks non-trivial).

    The generator is pure NumPy and deterministic in ``seed``.
    """
    if frames < 0:
        raise ValueError("frames must be >= 0")
    noise = synthetic_noise(width, height, seed)
    return [
        synthetic_frame(t, width, height, seed, noise)
        for t in range(frames)
    ]


def write_yuv_file(
    path: str | Path, frames: Sequence[YUVFrame]
) -> int:
    """Write frames as planar I420; returns bytes written."""
    data = b"".join(f.tobytes() for f in frames)
    Path(path).write_bytes(data)
    return len(data)


def read_yuv_file(
    path: str | Path,
    width: int,
    height: int,
    max_frames: int | None = None,
) -> Iterator[YUVFrame]:
    """Stream planar I420 frames from disk (the MJPEG read kernel's
    on-disk path)."""
    fsize = YUVFrame.frame_size(width, height)
    data = Path(path).read_bytes()
    n = len(data) // fsize
    if max_frames is not None:
        n = min(n, max_frames)
    for i in range(n):
        yield YUVFrame.frombytes(data[i * fsize : (i + 1) * fsize],
                                 width, height)


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical inputs)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    mse = float(np.mean((a - b) ** 2))
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


def box_downscale(plane: np.ndarray, factor: int) -> np.ndarray:
    """Integer box-filter downscale of ``(..., h, w)`` by ``factor``.

    Each ``factor x factor`` box becomes its rounded integer mean.  All
    arithmetic is integral (uint32 accumulation, rounded division), so
    the result is bit-exact regardless of whether the input is a single
    plane or a stacked batch — the property the vectorized mosaic and
    transcode kernels rely on for byte-identity.
    """
    a = np.asarray(plane)
    k = int(factor)
    if k <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if k == 1:
        return a.copy()
    h, w = a.shape[-2], a.shape[-1]
    if h % k or w % k:
        raise ValueError(
            f"plane {h}x{w} not divisible by downscale factor {k}"
        )
    boxes = a.astype(np.uint32).reshape(
        a.shape[:-2] + (h // k, k, w // k, k)
    )
    sums = boxes.sum(axis=(-3, -1))
    return ((sums + k * k // 2) // (k * k)).astype(a.dtype)
