"""Unit tests for the experiment harness and its renderers."""

import pytest

from repro.bench import ascii_chart, format_sweep
from repro.bench.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    MicroBenchResult,
    SweepResult,
    fig9_mjpeg_scaling,
    table1_machines,
)


class TestPlots:
    SERIES = {
        "machine-a": [(1, 10.0), (2, 5.0), (4, 2.5)],
        "machine-b": [(1, 20.0), (2, 10.0), (4, 5.0)],
    }

    def test_format_sweep_alignment(self):
        text = format_sweep(self.SERIES, "title", unit="s")
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "1" in lines[1] and "4" in lines[1]
        assert "10.00" in lines[2]
        assert "20.00" in lines[3]

    def test_format_sweep_missing_points(self):
        series = {"a": [(1, 1.0)], "b": [(1, 2.0), (2, 1.0)]}
        text = format_sweep(series, "t")
        assert "-" in text  # a has no point at x=2

    def test_ascii_chart_contains_markers_and_legend(self):
        text = ascii_chart(self.SERIES, "chart")
        assert text.startswith("chart")
        assert "* = machine-a" in text
        assert "o = machine-b" in text
        assert "└" in text

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart({}, "empty")


class TestResultTypes:
    def test_micro_bench_render(self):
        r = MicroBenchResult(
            title="T",
            rows=[("k", 10, 1.5, 2.5)],
            paper={"k": (100, 1.0, 2.0)},
        )
        text = r.render()
        assert "T" in text
        assert "k" in text and "100" in text and "1.50" in text

    def test_sweep_result_speedup(self):
        r = SweepResult(
            title="t",
            series={"m": [(1, 10.0), (2, 5.0), (4, 2.0)]},
        )
        assert r.speedup("m") == [
            pytest.approx(1.0), pytest.approx(2.0), pytest.approx(5.0)
        ]

    def test_sweep_render_has_baselines(self):
        sweep = fig9_mjpeg_scaling(frames=5)
        text = sweep.render()
        assert "standalone encoder" in text
        assert "Figure 9" in text


class TestPaperConstants:
    def test_table1_text(self):
        assert "Physical cores" in table1_machines()

    def test_table2_totals(self):
        """Cross-check table II's internal arithmetic once more."""
        assert PAPER_TABLE2["ydct"][0] == 4 * PAPER_TABLE2["udct"][0]
        assert PAPER_TABLE2["read"][0] == PAPER_TABLE2["vlc"][0]

    def test_table3_relationships(self):
        n_assign = PAPER_TABLE3["assign"][0]
        n_refine = PAPER_TABLE3["refine"][0]
        assert n_assign / n_refine == pytest.approx(2024.251)
