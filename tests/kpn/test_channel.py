"""Unit tests for bounded KPN channels."""

import threading
import time

import pytest

from repro.kpn import Channel, ChannelClosed


class TestFIFO:
    def test_order_preserved(self):
        ch = Channel("c", capacity=10)
        for i in range(5):
            ch.put(i)
        assert [ch.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_and_full(self):
        ch = Channel("c", capacity=2)
        assert len(ch) == 0 and not ch.full
        ch.put(1)
        ch.put(2)
        assert len(ch) == 2 and ch.full

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Channel("c", capacity=0)

    def test_message_count(self):
        ch = Channel("c")
        ch.put(1)
        ch.put(2)
        assert ch.total_messages == 2


class TestBlocking:
    def test_put_blocks_when_full(self):
        ch = Channel("c", capacity=1)
        ch.writer = "w"
        ch.put(1)
        done = threading.Event()

        def writer():
            ch.put(2)  # blocks until a get
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()
        assert ch.blocked_writer == "w"
        assert ch.get() == 1
        assert done.wait(2)
        assert ch.get() == 2

    def test_get_blocks_when_empty(self):
        ch = Channel("c")
        ch.reader = "r"
        got = []

        def reader():
            got.append(ch.get())

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        time.sleep(0.05)
        assert ch.blocked_reader == "r"
        ch.put(42)
        t.join(2)
        assert got == [42]

    def test_grow_unblocks_writer(self):
        ch = Channel("c", capacity=1)
        ch.put(1)
        done = threading.Event()

        def writer():
            ch.put(2)
            done.set()

        threading.Thread(target=writer, daemon=True).start()
        time.sleep(0.05)
        assert ch.grow() == 2
        assert done.wait(2)


class TestClose:
    def test_get_after_close_drains_then_raises(self):
        ch = Channel("c")
        ch.put(1)
        ch.close()
        assert ch.get() == 1
        with pytest.raises(ChannelClosed):
            ch.get()

    def test_put_after_close_raises(self):
        ch = Channel("c")
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.put(1)

    def test_close_wakes_blocked_reader(self):
        ch = Channel("c")
        result = []

        def reader():
            try:
                ch.get()
            except ChannelClosed:
                result.append("closed")

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        time.sleep(0.05)
        ch.close()
        t.join(2)
        assert result == ["closed"]
