"""Tests for KPN networks: determinism, deadlock detection/resolution."""

import pytest

from repro.core import DeadlockError
from repro.kpn import ChannelClosed, Network
from repro.kpn.deadlock import WaitForGraph, find_cycle
from repro.kpn.channel import Channel


def build_pipeline(out):
    """source -> double -> sink."""
    net = Network("pipe")

    def source(ins, outs):
        for i in range(20):
            outs["out"].put(i)

    def double(ins, outs):
        while True:
            outs["out"].put(ins["in"].get() * 2)

    def sink(ins, outs):
        try:
            while True:
                out.append(ins["in"].get())
        except ChannelClosed:
            pass

    net.add_process("source", source)
    net.add_process("double", double)
    net.add_process("sink", sink)
    net.connect("source", "out", "double", "in", capacity=3)
    net.connect("double", "out", "sink", "in", capacity=3)
    return net


class TestPipeline:
    def test_results_in_order(self):
        out = []
        build_pipeline(out).run(timeout=30)
        assert out == [i * 2 for i in range(20)]

    def test_deterministic_across_runs(self):
        runs = []
        for _ in range(3):
            out = []
            build_pipeline(out).run(timeout=30)
            runs.append(out)
        assert runs[0] == runs[1] == runs[2]

    def test_message_accounting(self):
        out = []
        net = build_pipeline(out)
        net.run(timeout=30)
        assert net.total_messages() == 40  # 20 through each channel

    def test_fan_out_fan_in(self):
        """Split a stream over two workers and merge deterministically
        (round-robin both ways keeps Kahn determinism)."""
        out = []
        net = Network("fanout")

        def source(ins, outs):
            for i in range(10):
                outs["a" if i % 2 == 0 else "b"].put(i)

        def worker(ins, outs):
            while True:
                outs["out"].put(ins["in"].get() + 100)

        def merge(ins, outs):
            try:
                while True:
                    out.append(ins["a"].get())
                    out.append(ins["b"].get())
            except ChannelClosed:
                pass

        net.add_process("source", source)
        net.add_process("w1", worker)
        net.add_process("w2", worker)
        net.add_process("merge", merge)
        net.connect("source", "a", "w1", "in")
        net.connect("source", "b", "w2", "in")
        net.connect("w1", "out", "merge", "a")
        net.connect("w2", "out", "merge", "b")
        net.run(timeout=30)
        assert out == [100 + i for i in range(10)]

    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_process("p", lambda i, o: None)
        with pytest.raises(ValueError):
            net.add_process("p", lambda i, o: None)
        net.add_channel("c")
        with pytest.raises(ValueError):
            net.add_channel("c")

    def test_process_error_propagates(self):
        net = Network()

        def bad(ins, outs):
            raise ValueError("kaboom")

        net.add_process("bad", bad)
        with pytest.raises(ValueError):
            net.run(timeout=10)


class TestDeadlockHandling:
    def test_artificial_deadlock_resolved_by_growing(self):
        """A guaranteed artificial deadlock: the producer must buffer two
        items before the consumer starts draining, but the data channel
        holds one.  Parks' algorithm must grow it instead of hanging."""
        out = []
        net = Network("parks")

        def producer(ins, outs):
            outs["data"].put(1)
            outs["data"].put(2)  # blocks: consumer is waiting on "go"
            outs["go"].put(True)

        def consumer(ins, outs):
            ins["go"].get()  # blocks until the producer finished pushing
            out.append(ins["data"].get())
            out.append(ins["data"].get())

        net.add_process("producer", producer)
        net.add_process("consumer", consumer)
        net.connect("producer", "data", "consumer", "data", capacity=1)
        net.connect("producer", "go", "consumer", "go", capacity=1)
        net.run(timeout=30)
        assert out == [1, 2]
        assert net.deadlocks_resolved >= 1
        assert net.channel("producer.data->consumer.data").capacity > 1

    def test_true_deadlock_detected(self):
        """Two processes each reading before writing: an all-read cycle
        that no buffer growth can fix."""
        net = Network("deadly")

        def a(ins, outs):
            v = ins["in"].get()  # waits for b forever
            outs["out"].put(v)

        def b(ins, outs):
            v = ins["in"].get()  # waits for a forever
            outs["out"].put(v)

        net.add_process("a", a)
        net.add_process("b", b)
        net.connect("a", "out", "b", "in")
        net.connect("b", "out", "a", "in")
        with pytest.raises(DeadlockError):
            net.run(timeout=10)

    def test_timeout_reports_deadlock_error(self):
        net = Network("slow")

        def sleeper(ins, outs):
            import time

            time.sleep(5)

        net.add_process("sleeper", sleeper)
        with pytest.raises(DeadlockError):
            net.run(timeout=0.2)


class TestWaitForGraph:
    def test_snapshot_and_cycle(self):
        c1 = Channel("c1")
        c1.writer, c1.reader = "a", "b"
        c2 = Channel("c2")
        c2.writer, c2.reader = "b", "a"
        # a blocked reading c2 (waits for b); b blocked reading c1
        c2.blocked_reader = "a"
        c1.blocked_reader = "b"
        g = WaitForGraph.snapshot([c1, c2])
        assert len(g.edges) == 2
        cycle = find_cycle(g)
        assert cycle is not None
        assert {e.waiter for e in cycle} == {"a", "b"}
        assert all(e.kind == "read" for e in cycle)

    def test_no_cycle(self):
        c1 = Channel("c1")
        c1.writer, c1.reader = "a", "b"
        c1.blocked_reader = "b"
        g = WaitForGraph.snapshot([c1])
        assert find_cycle(g) is None
