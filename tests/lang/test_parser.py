"""Unit tests for the kernel-language parser."""

import pytest

from repro.core import ParseError
from repro.lang import parse_program
from repro.lang.ast import (
    AgeDecl,
    FetchStmt,
    IndexDecl,
    LocalDecl,
    NativeBlock,
    OptionStmt,
    StoreStmt,
)

FIG5 = """
int32[] m_data age;
int32[] p_data age;

init:
  local int32[] values;
  %{ pass %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;
"""


class TestTopLevel:
    def test_fields(self):
        prog = parse_program(FIG5)
        assert [f.name for f in prog.fields] == ["m_data", "p_data"]
        assert all(f.aging for f in prog.fields)
        assert all(f.ndim == 1 for f in prog.fields)

    def test_multi_dim_field(self):
        prog = parse_program("uint8[][] frame age;")
        f = prog.fields[0]
        assert f.ndim == 2 and f.dtype == "uint8"

    def test_non_aging_field(self):
        prog = parse_program("float64[] config;")
        assert not prog.fields[0].aging

    def test_timer(self):
        prog = parse_program("timer t1;")
        assert prog.timers[0].name == "t1"

    def test_kernels(self):
        prog = parse_program(FIG5)
        assert [k.name for k in prog.kernels] == ["init", "mul2"]

    def test_field_without_brackets_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int32 scalar;")


class TestKernelItems:
    def test_declarations(self):
        prog = parse_program(FIG5)
        mul2 = prog.kernels[1]
        assert isinstance(mul2.items[0], AgeDecl)
        assert isinstance(mul2.items[1], IndexDecl)
        assert isinstance(mul2.items[2], FetchStmt)
        assert isinstance(mul2.items[3], NativeBlock)
        assert isinstance(mul2.items[4], StoreStmt)

    def test_local_scalar_and_array(self):
        prog = parse_program(
            "k:\n local int32 v;\n local float64[][] m;\n %{ pass %}"
        )
        locs = prog.kernels[0].locals()
        assert (locs[0].name, locs[0].ndim) == ("v", 0)
        assert (locs[1].name, locs[1].ndim, locs[1].dtype) == (
            "m", 2, "float64"
        )

    def test_fetch_forms(self):
        src = """
int32[] a age;
int32[][] b age;
k:
  age t;
  index x;
  index y;
  fetch whole = a(t);
  fetch elem = a(t)[x];
  fetch blk = b(t)[x:8][y:8];
  fetch mixed = b(t+1)[x][:];
"""
        k = parse_program(src).kernels[0]
        fe = k.fetches()
        assert fe[0].index == ()
        assert fe[1].index[0].var == "x" and fe[1].index[0].block == 1
        assert fe[2].index[0].block == 8 and fe[2].index[1].block == 8
        assert fe[3].age.offset == 1
        assert fe[3].index[1].is_all

    def test_index_offsets(self):
        src = """
int64[] f age;
k:
  age a;
  index x;
  fetch left = f(a)[x-1];
  fetch right = f(a)[x+2];
  fetch blk = f(a)[x-1:8];
"""
        k = parse_program(src).kernels[0]
        fe = k.fetches()
        assert fe[0].index[0].offset == -1
        assert fe[1].index[0].offset == 2
        assert fe[2].index[0].offset == -1
        assert fe[2].index[0].block == 8

    def test_age_expressions(self):
        src = """
int32[] f age;
k:
  age a;
  fetch p = f(a-1);
  store f(a+2) = p;
"""
        k = parse_program(src).kernels[0]
        assert k.fetches()[0].age.offset == -1
        assert k.stores()[0].age.offset == 2

    def test_literal_age(self):
        src = "int32[] f age;\nk:\n  age a;\n  fetch v = f(0);\n  fetch w = f(a);"
        k = parse_program(src).kernels[0]
        assert k.fetches()[0].age.literal == 0
        assert k.fetches()[0].age.var is None

    def test_options(self):
        src = "k:\n  age a;\n  index x;\n  age_limit 9;\n  domain x = 100;"
        k = parse_program(src).kernels[0]
        opts = k.options()
        assert opts[0] == OptionStmt("age_limit", None, 9, opts[0].line)
        assert opts[1].key == "x" and opts[1].value == 100

    def test_kernel_body_ends_at_next_kernel(self):
        prog = parse_program("a:\n %{ pass %}\nb:\n %{ pass %}")
        assert len(prog.kernels) == 2
        assert len(prog.kernels[0].natives()) == 1

    def test_kernel_body_ends_at_field_def(self):
        prog = parse_program("a:\n %{ pass %}\nint32[] f age;")
        assert len(prog.kernels) == 1
        assert len(prog.fields) == 1


class TestParseErrors:
    @pytest.mark.parametrize("src", [
        "int32[] f age",          # missing semicolon
        "k:\n fetch = f(a);",     # missing target
        "k:\n fetch v f(a);",     # missing =
        "k:\n store f(a) = ;",    # missing source
        "k:\n fetch v = f(a)[x:];",  # missing block size
        "k:\n fetch v = f();",    # missing age expr
        "garbage ;",              # not a definition
        "k:\n age ;",             # missing name
    ])
    def test_rejects(self, src):
        with pytest.raises(ParseError):
            parse_program(src)

    def test_error_position(self):
        with pytest.raises(ParseError) as e:
            parse_program("int32[] f age;\nbroken stuff here")
        assert e.value.line == 2
