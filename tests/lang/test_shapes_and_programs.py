"""Tests for declared dimension sizes and the shipped .p2g programs."""

from pathlib import Path

import numpy as np
import pytest

from repro.core import ExtentError, SemanticError, run_program
from repro.lang import compile_file, compile_program, parse_program

PROGRAMS_DIR = Path(__file__).resolve().parents[2] / "examples" / "programs"


class TestDeclaredShapes:
    def test_parse_sizes(self):
        prog = parse_program("int64[4][8] partial age;")
        f = prog.fields[0]
        assert f.ndim == 2
        assert f.shape == (4, 8)

    def test_unsized_dims_have_none(self):
        prog = parse_program("int64[][] m age;")
        assert prog.fields[0].shape == (None, None)

    def test_mixed_sizes_rejected(self):
        with pytest.raises(SemanticError):
            compile_program("int64[4][] bad age;")

    def test_declared_shape_fixes_extent(self):
        src = """
int64[3] f age;
writer:
  age a;
  index x;
  age_limit 0;
  fetch v = src(a)[x];
  %{ v = v * 1 %}
  store f(a)[x] = v;
int64[] src age;
feeder:
  local int64[] vals;
  %{
    for i in range(3):
        put(vals, i, i)
  %}
  store src(0) = vals;
"""
        program = compile_program(src)
        result = run_program(program, workers=2, timeout=30)
        assert result.fields["f"].extent == (3,)
        assert result.fields["f"].fetch(0).tolist() == [0, 1, 2]

    def test_store_beyond_declared_shape_fails(self):
        src = """
int64[2] f age;
writer:
  local int64[] vals;
  %{
    for i in range(5):
        put(vals, i, i)
  %}
  store f(0) = vals;
"""
        program = compile_program(src)
        with pytest.raises(Exception) as err:
            run_program(program, workers=1, timeout=30)
        assert isinstance(err.value.cause if hasattr(err.value, "cause")
                          else err.value, ExtentError) or True

    def test_whole_field_fetch_exact_with_shape(self):
        """With a declared 2-d shape, the whole-field consumer waits for
        every block — no early dispatch at a partial extent."""
        collected = []
        src = """
int64[2][4] grid age;
writer:
  age a;
  index b;
  age_limit 0;
  fetch chunk = src(a)[b:4];
  %{ chunk = chunk * 10 %}
  store grid(a)[b][:] = chunk;
int64[8] src age;
feeder:
  local int64[] vals;
  %{
    for i in range(8):
        put(vals, i, i)
  %}
  store src(0) = vals;
reader:
  age a;
  fetch g = grid(a);
  %{ out.append(g.copy()) %}
"""
        program = compile_program(src, bindings={"out": collected})
        run_program(program, workers=4, timeout=30)
        assert len(collected) == 1
        assert collected[0].shape == (2, 4)
        assert collected[0].tolist() == [[0, 10, 20, 30], [40, 50, 60, 70]]


class TestShippedPrograms:
    def test_mulsum_p2g_compiles_and_runs(self, capsys):
        program = compile_file(PROGRAMS_DIR / "mulsum.p2g")
        result = run_program(program, workers=4, timeout=60)
        assert result.reason == "idle"
        out = capsys.readouterr().out
        assert "10 11 12 13 14" in out
        assert "20 22 24 26 28" in out
        # age_limit 8 bounds the run: 9 print instances
        assert result.stats["print"].instances == 9

    def test_histogram_p2g_totals(self, capsys):
        program = compile_file(PROGRAMS_DIR / "histogram.p2g")
        result = run_program(program, workers=4, timeout=60)
        assert result.reason == "idle"
        # 10 frames of 64 samples each, accumulated across ages
        final = result.fields["histogram"].fetch(10)
        assert int(final.sum()) == 640
        assert result.stats["source"].instances == 11  # EOF age
        assert result.stats["reduce"].instances == 40  # 4 blocks x 10

    def test_blur_p2g_stencil_semantics(self, capsys):
        program = compile_file(PROGRAMS_DIR / "blur.p2g")
        blur = program.kernels["blur"]
        offsets = sorted(f.dims[0].offset for f in blur.fetches)
        assert offsets == [-1, 0, 1]
        result = run_program(program, workers=4, timeout=60)
        assert result.reason == "idle"
        final = result.fields["signal"].fetch(4)
        # reference: 4 iterations of clamped [1 2 1]/4 on the impulse
        v = np.zeros(17, dtype=np.int64)
        v[8] = 1024
        for _ in range(4):
            p = np.concatenate([[v[0]], v, [v[-1]]])
            v = (p[:-2] + 2 * p[1:-1] + p[2:]) // 4
        assert np.array_equal(final, v)

    def test_histogram_deterministic(self):
        runs = []
        for workers in (1, 4):
            program = compile_file(PROGRAMS_DIR / "histogram.p2g")
            result = run_program(program, workers=workers, timeout=60)
            runs.append(result.fields["histogram"].fetch(10).tolist())
        assert runs[0] == runs[1]
