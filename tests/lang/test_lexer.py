"""Unit tests for the kernel-language lexer."""

import pytest

from repro.core import LexError
from repro.lang import Token, TokenType, tokenize


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_field_definition(self):
        toks = tokenize("int32[] m_data age;")
        assert [t.type for t in toks] == [
            TokenType.TYPE, TokenType.LBRACKET, TokenType.RBRACKET,
            TokenType.IDENT, TokenType.KEYWORD, TokenType.SEMI,
            TokenType.EOF,
        ]

    def test_numbers(self):
        toks = tokenize("a+100")
        assert toks[2].type is TokenType.INT
        assert toks[2].value == "100"

    def test_keywords_vs_idents(self):
        toks = tokenize("fetch fetched age ages")
        assert toks[0].type is TokenType.KEYWORD
        assert toks[1].type is TokenType.IDENT
        assert toks[2].type is TokenType.KEYWORD
        assert toks[3].type is TokenType.IDENT

    def test_all_type_names(self):
        for name in ("int8", "uint8", "int16", "uint16", "int32",
                     "uint32", "int64", "uint64", "float32", "float64"):
            assert tokenize(name)[0].type is TokenType.TYPE

    def test_punctuation(self):
        assert values("( ) [ ] : ; = + - ,") == list("()[]:;=+-,")

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_empty_source(self):
        assert kinds("") == [TokenType.EOF]


class TestComments:
    def test_line_comment(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_hash_comment(self):
        assert values("a # python-style\nb") == ["a", "b"]

    def test_comment_at_eof(self):
        assert values("a // no newline") == ["a"]


class TestNativeBlocks:
    def test_single_line(self):
        toks = tokenize("%{ value *= 2 %}")
        assert toks[0].type is TokenType.NATIVE
        assert toks[0].value.strip() == "value *= 2"

    def test_multi_line_preserved_raw(self):
        src = "%{\nfor i in range(5):\n    put(values, i, i)\n%}"
        tok = tokenize(src)[0]
        assert "for i in range(5):" in tok.value
        assert "    put(values, i, i)" in tok.value

    def test_special_chars_not_tokenized(self):
        tok = tokenize("%{ a = {'x': [1, 2]} @ weird $ %}")[0]
        assert tok.type is TokenType.NATIVE
        assert "{'x': [1, 2]}" in tok.value

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("%{ never closed")

    def test_percent_inside_block(self):
        tok = tokenize("%{ x = 5 % 2 %}")[0]
        assert "5 % 2" in tok.value


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as e:
            tokenize("int32[] f @;")
        assert e.value.line == 1

    def test_error_has_position(self):
        with pytest.raises(LexError) as e:
            tokenize("ok\n  &")
        assert e.value.line == 2
