"""End-to-end tests: kernel-language source → running programs."""

import numpy as np
import pytest

from repro.core import SemanticError, run_program
from repro.lang import compile_file, compile_program
from repro.workloads import expected_series

FIG5 = """
int32[] m_data age;
int32[] p_data age;

init:
  local int32[] values;
  %{
    for i in range(5):
        put(values, i + 10, i)
  %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;

plus5:
  age a;
  index x;
  fetch value = p_data(a)[x];
  %{ value += 5 %}
  store m_data(a+1)[x] = value;

print:
  age a;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{ sink[a] = (m.copy(), p.copy()) %}
"""


class TestFigure5:
    def test_compiles_and_matches_paper_series(self):
        sink = {}
        program = compile_program(FIG5, bindings={"sink": sink})
        run_program(program, workers=4, max_age=2, timeout=60)
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_structure(self):
        program = compile_program(FIG5, bindings={"sink": {}})
        assert set(program.kernels) == {"init", "mul2", "plus5", "print"}
        mul2 = program.kernels["mul2"]
        assert mul2.has_age and mul2.index_vars == ("x",)
        assert mul2.fetches[0].scalar  # single-element fetch
        assert program.kernels["init"].run_once


class TestLanguageFeatures:
    def test_scalar_local_initialized_to_zero(self):
        out = []
        src = """
int64[] f age;
k:
  local int64 acc;
  %{
    acc += 41
    acc += 1
    out.append(acc)
  %}
  store f(0) = acc;
"""
        program = compile_program(src, bindings={"out": out})
        run_program(program, workers=1, timeout=30)
        assert out == [42]

    def test_block_fetch(self):
        got = {}
        src = """
int32[] data age;
feeder:
  local int32[] v;
  %{
    for i in range(10):
        put(v, i, i)
  %}
  store data(0) = v;

blocks:
  age a;
  index x;
  fetch chunk = data(a)[x:4];
  %{ got[x] = chunk.tolist() %}
"""
        program = compile_program(src, bindings={"got": got})
        run_program(program, workers=2, timeout=30)
        assert got == {0: [0, 1, 2, 3], 1: [4, 5, 6, 7], 2: [8, 9]}

    def test_none_source_skips_store(self):
        """Setting a store source to None takes the no-store path
        (end-of-stream for sources)."""
        src = """
int64[] stream age;
src:
  age a;
  local int64 v;
  %{
    v = a * 10 if a < 3 else None
  %}
  store stream(a) = v;
"""
        program = compile_program(src)
        result = run_program(program, workers=1, timeout=30)
        assert result.stats["src"].instances == 4  # ages 0..3; 3 stores
        assert result.fields["stream"].ages() == [0, 1, 2]

    def test_age_limit_option(self):
        src = """
int64[] f age;
src:
  age a;
  local int64 v;
  age_limit 2;
  %{ v = a %}
  store f(a) = v;
"""
        program = compile_program(src)
        result = run_program(program, workers=1, timeout=30)
        assert result.stats["src"].instances == 3  # ages 0, 1, 2

    def test_timer_binding(self):
        out = []
        src = """
timer t1;
int64[] f age;
k:
  local int64 v;
  %{
    out.append(t1.expired(100000))
    v = 1
  %}
  store f(0) = v;
"""
        program = compile_program(src, bindings={"out": out})
        assert program.timers == ("t1",)
        run_program(program, workers=1, timeout=30)
        assert out == [False]

    def test_extent_and_get_intrinsics(self):
        out = []
        src = """
int64[] f age;
init:
  local int64[] v;
  %{
    for i in range(4):
        put(v, i * i, i)
  %}
  store f(0) = v;

reader:
  age a;
  fetch m = f(a);
  %{
    total = 0
    for i in range(extent(m, 0)):
        total += get(m, i)
    out.append(total)
  %}
"""
        program = compile_program(src, bindings={"out": out})
        run_program(program, workers=1, timeout=30)
        assert out == [0 + 1 + 4 + 9]

    def test_bindings_reachable(self):
        sink = []
        src = "k:\n %{ sink.append(MAGIC) %}"
        program = compile_program(src, bindings={"sink": sink, "MAGIC": 7})
        run_program(program, workers=1, timeout=30)
        assert sink == [7]

    def test_two_stores_same_field_distinct_sources(self):
        src = """
int64[] f age;
k:
  age a;
  local int64 x;
  local int64 y;
  age_limit 0;
  %{
    x = 1
    y = 2
  %}
  store f(a) = x;
  store f(a+1) = y;
"""
        program = compile_program(src)
        result = run_program(program, workers=1, timeout=30)
        assert result.fields["f"].fetch(0, 0).item() == 1
        assert result.fields["f"].fetch(1, 0).item() == 2

    def test_invalid_python_reported_as_semantic_error(self):
        src = "k:\n %{ def broken( %}"
        with pytest.raises(SemanticError):
            compile_program(src)

    def test_compile_file(self, tmp_path):
        path = tmp_path / "prog.p2g"
        path.write_text("int32[] f age;\nk:\n  age a;\n  fetch v = f(a);")
        program = compile_file(path)
        assert program.name == "prog"
        assert "k" in program.kernels
