"""Unit tests for kernel-language semantic analysis."""

import pytest

from repro.core import SemanticError
from repro.lang import analyze, parse_program


def check(src):
    analyze(parse_program(src))


class TestValid:
    def test_figure5_program(self):
        check("""
int32[] m_data age;
int32[] p_data age;
init:
  local int32[] values;
  %{ pass %}
  store m_data(0) = values;
mul2:
  age a;
  index x;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;
""")

    def test_block_fetch_and_options(self):
        check("""
uint8[][] frame age;
dct:
  age a;
  index bx;
  index by;
  fetch blk = frame(a)[by:8][bx:8];
  age_limit 10;
  domain bx = 44;
  %{ pass %}
""")


class TestRejects:
    def test_duplicate_field(self):
        with pytest.raises(SemanticError):
            check("int32[] f age;\nint32[] f age;")

    def test_duplicate_kernel(self):
        with pytest.raises(SemanticError):
            check("k:\n %{ pass %}\nk:\n %{ pass %}")

    def test_kernel_field_collision(self):
        with pytest.raises(SemanticError):
            check("int32[] k age;\nk:\n %{ pass %}")

    def test_timer_field_collision(self):
        with pytest.raises(SemanticError):
            check("int32[] t age;\ntimer t;")

    def test_duplicate_timer(self):
        with pytest.raises(SemanticError):
            check("timer t;\ntimer t;")

    def test_unknown_field_in_fetch(self):
        with pytest.raises(SemanticError):
            check("k:\n  age a;\n  fetch v = ghost(a);")

    def test_unknown_field_in_store(self):
        with pytest.raises(SemanticError):
            check("k:\n  age a;\n  local int32 v;\n  store ghost(a) = v;")

    def test_two_age_declarations(self):
        with pytest.raises(SemanticError):
            check("int32[] f age;\nk:\n  age a;\n  age b;\n  fetch v = f(a);")

    def test_undeclared_age_var(self):
        with pytest.raises(SemanticError):
            check("int32[] f age;\nk:\n  age a;\n  fetch v = f(b);")

    def test_age_var_without_decl(self):
        with pytest.raises(SemanticError):
            check("int32[] f age;\nk:\n  fetch v = f(a);")

    def test_undeclared_index_var(self):
        with pytest.raises(SemanticError):
            check("int32[] f age;\nk:\n  age a;\n  fetch v = f(a)[x];")

    def test_index_arity_mismatch(self):
        with pytest.raises(SemanticError):
            check("""
int32[][] f age;
k:
  age a;
  index x;
  fetch v = f(a)[x];
""")

    def test_fetch_shadows_local(self):
        with pytest.raises(SemanticError):
            check("""
int32[] f age;
k:
  age a;
  local int32 v;
  fetch v = f(a);
""")

    def test_duplicate_store_pair(self):
        with pytest.raises(SemanticError):
            check("""
int32[] f age;
k:
  age a;
  local int32 v;
  store f(a) = v;
  store f(a) = v;
""")

    def test_variable_age_on_non_aging_field(self):
        with pytest.raises(SemanticError):
            check("int32[] f;\nk:\n  age a;\n  fetch v = f(a);")

    def test_nonzero_literal_on_non_aging_field(self):
        with pytest.raises(SemanticError):
            check("int32[] f;\nk:\n  age a;\n  fetch v = f(1);")

    def test_domain_for_unknown_index(self):
        with pytest.raises(SemanticError):
            check("k:\n  age a;\n  domain x = 5;")
