"""Chaos tests: deterministic output under adversarial timing.

Kernel bodies get random sleeps injected (seeded per run), workers race,
the analyzer lags — and the write-once model must still produce
bit-identical results.  This is the strongest executable form of the
paper's determinism claim.
"""

import random
import time

import numpy as np
import pytest

from repro.core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
    run_program,
)
from repro.workloads import build_mulsum, expected_series


def jittered_mulsum(seed: int):
    """The figure-5 program with random per-instance delays."""
    rng = random.Random(seed)
    program, sink = build_mulsum()
    kernels = []
    for k in program.kernels.values():
        inner = k.body

        def body(ctx, inner=inner):
            time.sleep(rng.random() * 0.002)
            inner(ctx)

        kernels.append(
            KernelDef(k.name, body, fetches=k.fetches, stores=k.stores,
                      has_age=k.has_age, index_vars=k.index_vars,
                      domain=k.domain, age_limit=k.age_limit)
        )
    return Program.build(
        program.fields.values(), kernels, program.timers, "jittered"
    ), sink


class TestChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_jittered_mulsum_still_exact(self, seed):
        program, sink = jittered_mulsum(seed)
        run_program(program, workers=6, max_age=3, timeout=120)
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_slow_producer_fast_consumer(self):
        """A consumer that outruns its producer must simply wait, never
        observe partial data."""
        observed = []

        def slow_source(ctx):
            if ctx.age >= 4:
                return
            time.sleep(0.01)
            ctx.emit("data", np.full(16, ctx.age, dtype=np.int64))

        def fast_consumer(ctx):
            chunk = ctx["chunk"]
            # all elements of an age must be the same value — a partial
            # observation would mix ages or zeros
            assert len(set(chunk.tolist())) == 1
            observed.append((ctx.age, int(chunk[0])))

        program = Program.build(
            [FieldDef("data", "int64", 1, shape=(16,))],
            [
                KernelDef("source", slow_source, has_age=True,
                          stores=(StoreSpec("data", key="data"),)),
                KernelDef(
                    "consumer", fast_consumer, has_age=True,
                    index_vars=("x",),
                    fetches=(FetchSpec("chunk", "data",
                                       dims=(Dim.of("x", 4),)),),
                ),
            ],
        )
        result = run_program(program, workers=8, timeout=60)
        assert result.reason == "idle"
        assert sorted(observed) == [
            (age, age) for age in range(4) for _ in range(4)
        ]

    def test_many_workers_tiny_work(self):
        """More workers than instances: no deadlock, no double dispatch."""
        counts = []

        def one(ctx):
            counts.append(ctx.age)
            if ctx.age < 3:
                ctx.emit("f", ctx.age)

        program = Program.build(
            [FieldDef("f", "int64", 1)],
            [KernelDef("one", one, has_age=True,
                       stores=(StoreSpec("f", key="f"),))],
        )
        run_program(program, workers=16, timeout=60)
        assert sorted(counts) == [0, 1, 2, 3]
