"""Chaos tests: deterministic output under adversarial timing.

Kernel bodies get random sleeps injected (seeded per run), workers race,
the analyzer lags — and the write-once model must still produce
bit-identical results.  This is the strongest executable form of the
paper's determinism claim.
"""

import random
import time

import numpy as np
import pytest

from repro.core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
    run_program,
)
from repro.workloads import build_mulsum, expected_series


def jittered_mulsum(seed: int):
    """The figure-5 program with random per-instance delays."""
    rng = random.Random(seed)
    program, sink = build_mulsum()
    kernels = []
    for k in program.kernels.values():
        inner = k.body

        def body(ctx, inner=inner):
            time.sleep(rng.random() * 0.002)
            inner(ctx)

        kernels.append(
            KernelDef(k.name, body, fetches=k.fetches, stores=k.stores,
                      has_age=k.has_age, index_vars=k.index_vars,
                      domain=k.domain, age_limit=k.age_limit)
        )
    return Program.build(
        program.fields.values(), kernels, program.timers, "jittered"
    ), sink


class TestChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_jittered_mulsum_still_exact(self, seed):
        program, sink = jittered_mulsum(seed)
        run_program(program, workers=6, max_age=3, timeout=120)
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_slow_producer_fast_consumer(self):
        """A consumer that outruns its producer must simply wait, never
        observe partial data."""
        observed = []

        def slow_source(ctx):
            if ctx.age >= 4:
                return
            time.sleep(0.01)
            ctx.emit("data", np.full(16, ctx.age, dtype=np.int64))

        def fast_consumer(ctx):
            chunk = ctx["chunk"]
            # all elements of an age must be the same value — a partial
            # observation would mix ages or zeros
            assert len(set(chunk.tolist())) == 1
            observed.append((ctx.age, int(chunk[0])))

        program = Program.build(
            [FieldDef("data", "int64", 1, shape=(16,))],
            [
                KernelDef("source", slow_source, has_age=True,
                          stores=(StoreSpec("data", key="data"),)),
                KernelDef(
                    "consumer", fast_consumer, has_age=True,
                    index_vars=("x",),
                    fetches=(FetchSpec("chunk", "data",
                                       dims=(Dim.of("x", 4),)),),
                ),
            ],
        )
        result = run_program(program, workers=8, timeout=60)
        assert result.reason == "idle"
        assert sorted(observed) == [
            (age, age) for age in range(4) for _ in range(4)
        ]

    def test_many_workers_tiny_work(self):
        """More workers than instances: no deadlock, no double dispatch."""
        counts = []

        def one(ctx):
            counts.append(ctx.age)
            if ctx.age < 3:
                ctx.emit("f", ctx.age)

        program = Program.build(
            [FieldDef("f", "int64", 1)],
            [KernelDef("one", one, has_age=True,
                       stores=(StoreSpec("f", key="f"),))],
        )
        run_program(program, workers=16, timeout=60)
        assert sorted(counts) == [0, 1, 2, 3]


class TestNodeKillChaos:
    """Cluster chaos: a randomly chosen node is killed at a randomly
    chosen instant (seeded), and the recovered run must match the
    fault-free output bit for bit.

    On failure the fault schedule is dumped as JSON (to
    ``$CHAOS_REPRO_DIR`` when set, else the cwd) so CI uploads an exact
    repro artifact: ``FaultSchedule.from_json`` + ``--fail-node`` replay
    the identical kill.
    """

    NODES = {"n0": 2, "n1": 2, "n2": 1}

    def _run(self, faults):
        from repro.dist import Cluster, RecoveryConfig

        program, sink = build_mulsum()
        result = Cluster(program, dict(self.NODES)).run(
            max_age=3,
            timeout=120,
            faults=faults,
            recovery=RecoveryConfig(
                heartbeat_interval=0.01, heartbeat_timeout=0.1
            ),
        )
        return result, sink

    def _dump_repro(self, schedule, seed):
        import json
        import os
        import pathlib

        out_dir = pathlib.Path(os.environ.get("CHAOS_REPRO_DIR", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"chaos-repro-seed{seed}.json"
        path.write_text(json.dumps(schedule.to_json(), indent=2) + "\n")
        return path

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_seeded_node_kill_bit_identical(self, seed):
        from repro.dist import FaultInjector, FaultSchedule
        from repro.obs import dump_flight

        schedule = FaultSchedule.random(
            sorted(self.NODES), seed, kinds=("kill",), n_faults=1
        )
        result = None
        try:
            result, sink = self._run(FaultInjector(schedule))
            assert result.reason == "idle"
            expected = expected_series(4)
            assert set(sink) == set(expected)
            for age in expected:
                assert np.array_equal(sink[age][0], expected[age][0])
                assert np.array_equal(sink[age][1], expected[age][1])
        except BaseException as exc:
            path = self._dump_repro(schedule, seed)
            print(f"chaos repro schedule written to {path}")
            # Flight recording next to the repro JSON: either the run
            # already dumped one (errors raised inside Cluster.run), or
            # the run "succeeded" with wrong output and we dump the ring
            # the fault-tolerant run kept armed.
            flight = getattr(exc, "flight_path", None)
            if flight is None and result is not None and result.tracer:
                flight = dump_flight(
                    result.tracer,
                    reason=f"chaos seed {seed}: {type(exc).__name__}",
                    directory=path.parent,
                )
            if flight is not None:
                print(f"flight recording written to {flight}")
            raise

    def test_schedule_replay_from_json(self):
        """The dumped artifact reproduces the same fault decisions."""
        from repro.dist import FaultSchedule

        schedule = FaultSchedule.random(sorted(self.NODES), 99)
        replayed = FaultSchedule.from_json(schedule.to_json())
        assert replayed.specs == schedule.specs
