"""Integration tests asserting the paper's published artifacts.

Each test corresponds to a row in DESIGN.md's experiment index; the
assertions encode what the paper *states* (exact values, counts,
geometry, curve shapes) rather than incidental implementation detail.
"""

import numpy as np
import pytest

from repro.bench import (
    fig2_intermediate_graph,
    fig3_final_graph,
    fig4_dcdag,
    fig9_mjpeg_scaling,
    fig10_kmeans_scaling,
    table1_machines,
)
from repro.bench.experiments import PAPER_TABLE2, PAPER_TABLE3
from repro.core import run_program
from repro.lang import compile_program
from repro.workloads import MJPEGConfig, build_mulsum


class TestFigure5Semantics:
    """Section V: 'The print kernel writes {10, 11, 12, 13, 14},
    {20, 22, 24, 26, 28} for the first age and {25, 27, 29, 31, 33},
    {50, 54, 58, 62, 66} for the second'."""

    PAPER_AGE0 = ([10, 11, 12, 13, 14], [20, 22, 24, 26, 28])
    PAPER_AGE1 = ([25, 27, 29, 31, 33], [50, 54, 58, 62, 66])

    def test_python_api(self):
        program, sink = build_mulsum()
        run_program(program, workers=4, max_age=1, timeout=60)
        assert (sink[0][0].tolist(), sink[0][1].tolist()) == self.PAPER_AGE0
        assert (sink[1][0].tolist(), sink[1][1].tolist()) == self.PAPER_AGE1

    def test_kernel_language(self):
        sink = {}
        src = """
int32[] m_data age;
int32[] p_data age;
init:
  local int32[] values;
  %{
    for i in range(5):
        put(values, i + 10, i)
  %}
  store m_data(0) = values;
mul2:
  age a;
  index x;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;
plus5:
  age a;
  index x;
  fetch value = p_data(a)[x];
  %{ value += 5 %}
  store m_data(a+1)[x] = value;
print:
  age a;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{ sink[a] = (m.tolist(), p.tolist()) %}
"""
        program = compile_program(src, bindings={"sink": sink})
        run_program(program, workers=4, max_age=1, timeout=60)
        assert sink[0] == self.PAPER_AGE0
        assert sink[1] == self.PAPER_AGE1


class TestTableI:
    def test_machine_rows(self):
        text = table1_machines()
        for fragment in (
            "Intel Core i7 860 2,8 GHz", "AMD Opteron 8218 2,6 GHz",
            "Nehalem (Intel)", "Santa Rosa (AMD)",
        ):
            assert fragment in text


class TestTableIIGeometry:
    """Table II instance arithmetic at the paper's CIF parameters."""

    def test_block_counts(self):
        cfg = MJPEGConfig()
        assert cfg.luma_blocks == 1584
        assert cfg.chroma_blocks == 396

    def test_paper_dct_counts_are_per_age_times_ages(self):
        # yDCT 80784 = 1584 x 51, uDCT/vDCT 20196 = 396 x 51
        assert PAPER_TABLE2["ydct"][0] == 1584 * 51
        assert PAPER_TABLE2["udct"][0] == 396 * 51
        assert PAPER_TABLE2["vdct"][0] == 396 * 51

    def test_paper_ratio_dct_dominates(self):
        """Section VIII-A: 'the majority of CPU-time is spent in the
        kernel instances of yDCT, uDCT and vDCT'."""
        total = sum(n * k for n, _d, k in PAPER_TABLE2.values())
        dct = sum(
            PAPER_TABLE2[s][0] * PAPER_TABLE2[s][2]
            for s in ("ydct", "udct", "vdct")
        )
        assert dct / total > 0.9

    def test_dispatch_much_smaller_than_kernel_time(self):
        """Section VIII-A: 'time spent in kernel code is considerably
        higher compared to the dispatch overhead'."""
        for name in ("ydct", "udct", "vdct", "vlc"):
            _n, dispatch, kernel = PAPER_TABLE2[name]
            assert kernel / dispatch > 10


class TestTableIIIGeometry:
    def test_paper_counts(self):
        assert PAPER_TABLE3["refine"][0] == 100 * 10
        assert PAPER_TABLE3["print"][0] == 10 + 1
        assert abs(PAPER_TABLE3["assign"][0] - 2000 * 100 * 10) < 25_000

    def test_assign_dispatch_comparable_to_kernel(self):
        """Section VIII-B: the fine granularity of assign is 'witnessed
        when comparing the dispatch time to the time spent in kernel
        code' — they are the same order of magnitude."""
        _n, dispatch, kernel = PAPER_TABLE3["assign"]
        assert 0.2 < dispatch / kernel < 1.0


class TestFigure9:
    def test_series_shapes(self):
        sweep = fig9_mjpeg_scaling(frames=50)
        for machine, pts in sweep.series.items():
            times = [t for _w, t in sorted(pts)]
            # near-linear scaling: monotone decreasing
            assert all(b <= a * 1.02 for a, b in zip(times, times[1:]))
        # speedup at 8 workers is substantial on both machines
        for machine in sweep.series:
            assert sweep.speedup(machine)[-1] > 3.0

    def test_standalone_reference_lines(self):
        sweep = fig9_mjpeg_scaling(frames=50)
        i7 = sweep.baselines["4-way Intel Core i7"]
        opteron = sweep.baselines["8-way AMD Opteron"]
        # paper: 19 s vs 30 s -> ratio ~1.58
        assert opteron / i7 == pytest.approx(30 / 19, rel=0.05)

    def test_render(self):
        text = fig9_mjpeg_scaling(frames=10).render()
        assert "Figure 9" in text and "standalone" in text


class TestFigure10:
    def test_knee_and_degradation(self):
        sweep = fig10_kmeans_scaling()
        for machine, pts in sweep.series.items():
            times = dict(pts)
            # scales up to 4 workers...
            assert times[4] < times[1] / 2
            # ...then turns upward
            assert times[8] > min(times.values()) * 1.02

    def test_opteron_worse_than_i7_past_knee(self):
        sweep = fig10_kmeans_scaling()

        def deg(name):
            times = dict(sweep.series[name])
            return times[8] / min(times.values())

        assert deg("8-way AMD Opteron") > deg("4-way Intel Core i7")


class TestFigures234:
    def test_fig2_mentions_fields(self):
        text = fig2_intermediate_graph()
        assert "[m_data]" in text and "[p_data]" in text

    def test_fig3_no_fields(self):
        text = fig3_final_graph()
        assert "[m_data]" not in text
        assert "(mul2)" in text

    def test_fig4_acyclic_unroll(self):
        text = fig4_dcdag(max_age=2)
        assert "acyclic" in text
        assert "mul2@0" in text and "mul2@2" in text
