"""Smoke tests: every shipped example runs to completion (small args).

Examples are user-facing documentation; a broken one is a broken
README.  Each runs in a subprocess with reduced parameters and must
exit 0 and print its key success line.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "2", "2")
        assert "matches the paper's published series: True" in out

    def test_mjpeg_encode(self):
        out = run_example("mjpeg_encode.py", "2", "2")
        assert "byte-identical:  True" in out

    def test_kmeans_clustering(self):
        out = run_example("kmeans_clustering.py", "80", "5", "3", "2")
        assert "trajectory == Lloyd's: True" in out

    def test_deadline_stream(self):
        out = run_example("deadline_stream.py", "6", "40", "2")
        assert "deadline" in out
        assert "SKIPPED" in out  # at least one frame misses by design

    def test_lls_granularity(self):
        out = run_example("lls_granularity.py")
        assert "centroid trajectories identical: True" in out

    def test_kpn_vs_p2g(self):
        out = run_example("kpn_vs_p2g.py", "4", "3")
        assert "outputs identical: True" in out

    def test_distributed_cluster(self):
        out = run_example("distributed_cluster.py", "80", "5", "2")
        assert "distributed result == sequential Lloyd's: True" in out
        assert "plan changed" in out

    def test_intra_wavefront(self):
        out = run_example("intra_wavefront.py", "96", "64", "1", "2")
        assert "bit-identical:      True" in out

    def test_video_pipeline(self, tmp_path):
        out = run_example(
            "video_pipeline.py", "2", "2", str(tmp_path / "c.avi")
        )
        assert "luma PSNR" in out
        assert (tmp_path / "c.avi").exists()

    @pytest.mark.parametrize(
        "program,expect",
        [
            ("mulsum.p2g", "age 0 : 10 11 12 13 14"),
            ("histogram.p2g", "total 640"),
            ("blur.p2g", "age 4"),
        ],
    )
    def test_p2g_programs_via_cli(self, program, expect):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run",
             str(EXAMPLES / "programs" / program), "-w", "2"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert expect in proc.stdout
