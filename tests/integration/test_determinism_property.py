"""Property-based determinism tests.

The paper's central correctness claim: "the schedulers ... can analyze
dependencies and guarantee fully deterministic output independent of
order due to the write-once semantics of fields."  Hypothesis generates
random multi-stage pipeline programs (random per-stage index patterns,
block sizes, arithmetic and optional cross-age feedback) and we assert
that the runtime's output equals a sequential NumPy evaluation and is
bit-identical across worker counts and scheduling policies.
"""

from dataclasses import dataclass

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
    run_program,
)


@dataclass(frozen=True)
class StagePlan:
    mode: str  # "element" | "block" | "whole"
    block: int
    mul: int
    add: int


@st.composite
def pipeline_case(draw):
    n = draw(st.integers(4, 24))
    stages = draw(
        st.lists(
            st.builds(
                StagePlan,
                mode=st.sampled_from(["element", "block", "whole"]),
                block=st.integers(2, 5),
                mul=st.integers(1, 3),
                add=st.integers(-5, 5),
            ),
            min_size=1,
            max_size=4,
        )
    )
    feedback_ages = draw(st.integers(0, 3))
    return n, stages, feedback_ages


def build_pipeline(n, stages, feedback_ages):
    """Source -> stage_1 -> ... -> stage_k (-> feedback to source field)."""
    fields = [FieldDef("f0", "int64", 1, shape=(n,))]
    kernels = []
    init_data = np.arange(n, dtype=np.int64)

    def init_body(ctx: KernelContext) -> None:
        ctx.emit("f0", init_data)

    kernels.append(
        KernelDef("init", init_body,
                  stores=(StoreSpec("f0", AgeExpr.const(0)),))
    )

    for i, plan in enumerate(stages, start=1):
        src, dst = f"f{i-1}", f"f{i}"
        fields.append(FieldDef(dst, "int64", 1, shape=(n,)))
        mul, add = plan.mul, plan.add

        def body(ctx: KernelContext, mul=mul, add=add) -> None:
            ctx.emit("out", ctx["v"] * mul + add)

        if plan.mode == "element":
            dims = (Dim.of("x"),)
            fetch = FetchSpec("v", src, dims=dims, scalar=True)
            store = StoreSpec(dst, dims=dims, key="out")
            index_vars = ("x",)
        elif plan.mode == "block":
            dims = (Dim.of("x", plan.block),)
            fetch = FetchSpec("v", src, dims=dims)
            store = StoreSpec(dst, dims=dims, key="out")
            index_vars = ("x",)
        else:
            fetch = FetchSpec("v", src)
            store = StoreSpec(dst, key="out")
            index_vars = ()
        kernels.append(
            KernelDef(f"stage{i}", body, has_age=True,
                      index_vars=index_vars, fetches=(fetch,),
                      stores=(store,))
        )

    if feedback_ages > 0:
        last = f"f{len(stages)}"

        def feedback_body(ctx: KernelContext) -> None:
            ctx.emit("f0", ctx["v"] + 1)

        kernels.append(
            KernelDef(
                "feedback", feedback_body, has_age=True,
                fetches=(FetchSpec("v", last),),
                stores=(StoreSpec("f0", AgeExpr.var(1)),),
                age_limit=feedback_ages - 1,
            )
        )
    return Program.build(fields, kernels, name="random-pipeline")


def reference_eval(n, stages, feedback_ages):
    """Sequential NumPy semantics of the generated program."""
    ages = feedback_ages + 1
    f0 = np.arange(n, dtype=np.int64)
    outputs = {}
    for age in range(ages):
        v = f0
        for plan in stages:
            v = v * plan.mul + plan.add
        outputs[age] = v
        f0 = v + 1  # feedback
    return outputs


class TestPipelineDeterminism:
    @given(pipeline_case())
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_and_worker_invariant(self, case):
        n, stages, feedback_ages = case
        expected = reference_eval(n, stages, feedback_ages)
        last = f"f{len(stages)}"
        results = []
        for workers in (1, 4):
            program = build_pipeline(n, stages, feedback_ages)
            run = run_program(program, workers=workers, timeout=60)
            assert run.reason == "idle"
            got = {
                age: run.fields[last].fetch(age)
                for age in expected
            }
            results.append(got)
            for age, ref in expected.items():
                assert np.array_equal(got[age], ref), (
                    f"age {age}: {got[age]} != {ref} "
                    f"(workers={workers}, stages={stages})"
                )
        for age in expected:
            assert np.array_equal(results[0][age], results[1][age])

    @given(pipeline_case())
    @settings(max_examples=10, deadline=None)
    def test_scheduling_policy_does_not_change_output(self, case):
        from repro.core import ExecutionNode

        n, stages, feedback_ages = case
        expected = reference_eval(n, stages, feedback_ages)
        last = f"f{len(stages)}"
        for policy in ("age", "fifo", "lifo"):
            program = build_pipeline(n, stages, feedback_ages)
            node = ExecutionNode(program, workers=3, scheduling=policy)
            run = node.run(timeout=60)
            for age, ref in expected.items():
                assert np.array_equal(run.fields[last].fetch(age), ref)

    @given(pipeline_case())
    @settings(max_examples=8, deadline=None)
    def test_instance_counts_match_structure(self, case):
        n, stages, feedback_ages = case
        program = build_pipeline(n, stages, feedback_ages)
        run = run_program(program, workers=2, timeout=60)
        ages = feedback_ages + 1
        for i, plan in enumerate(stages, start=1):
            if plan.mode == "element":
                per_age = n
            elif plan.mode == "block":
                per_age = -(-n // plan.block)
            else:
                per_age = 1
            assert run.stats[f"stage{i}"].instances == per_age * ages
