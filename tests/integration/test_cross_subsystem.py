"""Cross-subsystem integration: LLS transforms, clusters and the
language front-end must all preserve observable behaviour."""

import numpy as np

from repro.core import coarsen, fuse, run_program
from repro.dist import Cluster
from repro.lang import compile_program
from repro.media import synthetic_sequence
from repro.workloads import (
    MJPEGConfig,
    build_mjpeg,
    build_mulsum,
    expected_series,
    mjpeg_baseline,
)


class TestLLSPreservesMJPEG:
    def test_coarsened_dct_byte_identical(self):
        """Coarsening the luma DCT to row-of-blocks granularity must not
        change a single output byte."""
        cfg = MJPEGConfig(width=64, height=64, frames=2)
        clip = synthetic_sequence(2, 64, 64, cfg.seed)
        program, sink = build_mjpeg(clip, cfg)
        coarse = coarsen(program, "ydct", "bx", 4)
        result = run_program(coarse, workers=4, timeout=300)
        assert result.stats["ydct"].instances == 8 * 2 * 2  # by=8, bx=2
        assert sink.stream() == mjpeg_baseline(clip, cfg)


class TestLanguageAndAPIEquivalence:
    def test_same_program_same_fields(self):
        api_program, api_sink = build_mulsum()
        run_program(api_program, workers=2, max_age=2, timeout=60)

        lang_sink = {}
        src = """
int64[] m_data age;
int64[] p_data age;
init:
  local int64[] values;
  %{
    for i in range(5):
        put(values, i + 10, i)
  %}
  store m_data(0) = values;
mul2:
  age a;
  index x;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;
plus5:
  age a;
  index x;
  fetch value = p_data(a)[x];
  %{ value += 5 %}
  store m_data(a+1)[x] = value;
print:
  age a;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{ sink[a] = (m.copy(), p.copy()) %}
"""
        lang_program = compile_program(src, bindings={"sink": lang_sink})
        run_program(lang_program, workers=2, max_age=2, timeout=60)
        for age in api_sink:
            assert np.array_equal(api_sink[age][0], lang_sink[age][0])
            assert np.array_equal(api_sink[age][1], lang_sink[age][1])

    def test_language_program_survives_lls_and_cluster(self):
        """Compile from source, fuse the pipeline, run on two nodes."""
        sink = {}
        src = """
int64[] m_data age;
int64[] p_data age;
init:
  local int64[] values;
  %{
    for i in range(5):
        put(values, i + 10, i)
  %}
  store m_data(0) = values;
mul2:
  age a;
  index x;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;
plus5:
  age a;
  index x;
  fetch value = p_data(a)[x];
  %{ value += 5 %}
  store m_data(a+1)[x] = value;
print:
  age a;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{ sink[a] = m.copy() %}
"""
        program = compile_program(src, bindings={"sink": sink})
        fused = fuse(program, "mul2", "plus5")
        result = Cluster(fused, {"a": 2, "b": 2}).run(max_age=2, timeout=60)
        assert result.reason == "idle"
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age], expected[age][0])


class TestGCWithStreaming:
    def test_mjpeg_with_gc_still_correct(self):
        cfg = MJPEGConfig(width=64, height=64, frames=6)
        clip = synthetic_sequence(6, 64, 64, cfg.seed)
        program, sink = build_mjpeg(clip, cfg)
        result = run_program(
            program, workers=4, timeout=300, gc_fields=True, keep_ages=1
        )
        assert result.reason == "idle"
        assert sink.stream() == mjpeg_baseline(clip, cfg)
        assert result.gc_bytes > 0  # old frames were actually collected

    def test_gc_bounds_memory_against_no_gc(self):
        cfg = MJPEGConfig(width=64, height=64, frames=6)

        def live_bytes(gc):
            clip = synthetic_sequence(6, 64, 64, cfg.seed)
            program, _ = build_mjpeg(clip, cfg)
            result = run_program(program, workers=2, timeout=300,
                                 gc_fields=gc)
            return result.fields.live_bytes()

        assert live_bytes(True) < live_bytes(False)
