"""Unit tests for the failure flight recorder."""

import json

from repro.obs import (
    NULL_TRACER,
    Telemetry,
    TelemetryConfig,
    Tracer,
    dump_flight,
    flight_dir,
    validate_chrome_trace,
)


class TestFlightDir:
    def test_env_priority(self, tmp_path, monkeypatch):
        monkeypatch.delenv("P2G_FLIGHT_DIR", raising=False)
        monkeypatch.delenv("CHAOS_REPRO_DIR", raising=False)
        assert str(flight_dir()) == "."
        monkeypatch.setenv("CHAOS_REPRO_DIR", str(tmp_path / "chaos"))
        assert flight_dir() == tmp_path / "chaos"
        monkeypatch.setenv("P2G_FLIGHT_DIR", str(tmp_path / "flight"))
        assert flight_dir() == tmp_path / "flight"  # P2G_FLIGHT_DIR wins


class TestDumpFlight:
    def test_disabled_tracer_dumps_nothing(self, tmp_path):
        assert dump_flight(NULL_TRACER, "boom", directory=tmp_path) is None

    def test_empty_ring_dumps_nothing(self, tmp_path):
        assert dump_flight(Tracer(), "boom", directory=tmp_path) is None

    def test_dump_is_a_valid_trace_with_flight_envelope(self, tmp_path):
        tr = Tracer(mode="ring", ring=8)
        for i in range(12):
            tr.instant(f"e{i}", "test", "node0", "worker0")
        path = dump_flight(tr, "NodeFailureError: node died",
                           context={"node": "node0"}, directory=tmp_path)
        assert path is not None and path.parent == tmp_path
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == 8  # the ring window
        assert doc["flight"]["reason"].startswith("NodeFailureError")
        assert doc["flight"]["context"] == {"node": "node0"}
        assert doc["flight"]["ring_dropped"] == 4

    def test_consecutive_dumps_get_distinct_paths(self, tmp_path):
        tr = Tracer(mode="ring")
        tr.instant("e", "test", "p", "t")
        a = dump_flight(tr, "first", directory=tmp_path)
        b = dump_flight(tr, "second", directory=tmp_path)
        assert a != b

    def test_unwritable_directory_returns_none(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("")  # mkdir(parents=True) will fail on a file
        tr = Tracer(mode="ring")
        tr.instant("e", "test", "p", "t")
        assert dump_flight(tr, "boom", directory=target / "sub") is None


class TestSloBreachFlightDump:
    """Satellite: an SLO burn alert under a multi-tenant run dumps a
    flight recording attributed to the offending session."""

    def test_two_session_breach_dumps_session_annotated_flight(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.stream import (
            SessionManager,
            SessionSpec,
            StreamConfig,
        )
        from repro.workloads import MJPEGConfig, build_mjpeg_stream

        monkeypatch.setenv("P2G_FLIGHT_DIR", str(tmp_path))
        specs = []
        for i, deadline in enumerate((None, 0.001)):
            # slow: a sub-microsecond deadline every frame must miss.
            cfg = MJPEGConfig(width=32, height=32, frames=6,
                              seed=100 + i)
            scfg = StreamConfig(fps=0, max_frames=6, lag_window=4,
                                deadline_ms=deadline,
                                degrade_ratio=1.0)  # degrade, not shed
            program, _sink, binding = build_mjpeg_stream(cfg, scfg)
            specs.append(SessionSpec(f"s{i}", program, binding))
        tel = Telemetry(TelemetryConfig(
            interval_s=10.0, slo_min_frames=3, slo_cooldown_s=0.0,
            slo_burn_alert=2.0,
        ))
        mgr = SessionManager(
            specs, workers=2, batch=4,
            tracer=Tracer(mode="ring"), telemetry=tel,
        )
        result = mgr.run(timeout=30.0)
        assert result.telemetry is tel
        # Only the deadline-carrying session s1 breached.
        assert tel.slo.alerts("s1")
        assert not tel.slo.alerts("s0")
        assert tel.flight_paths, "breach must leave a flight recording"
        doc = json.loads(tel.flight_paths[0].read_text())
        assert validate_chrome_trace(doc) > 0
        assert doc["flight"]["reason"] == "slo-breach"
        assert doc["flight"]["context"]["session"] == "s1"
        assert "[slo] s1" in capsys.readouterr().err
