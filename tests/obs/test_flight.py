"""Unit tests for the failure flight recorder."""

import json

from repro.obs import (
    NULL_TRACER,
    Tracer,
    dump_flight,
    flight_dir,
    validate_chrome_trace,
)


class TestFlightDir:
    def test_env_priority(self, tmp_path, monkeypatch):
        monkeypatch.delenv("P2G_FLIGHT_DIR", raising=False)
        monkeypatch.delenv("CHAOS_REPRO_DIR", raising=False)
        assert str(flight_dir()) == "."
        monkeypatch.setenv("CHAOS_REPRO_DIR", str(tmp_path / "chaos"))
        assert flight_dir() == tmp_path / "chaos"
        monkeypatch.setenv("P2G_FLIGHT_DIR", str(tmp_path / "flight"))
        assert flight_dir() == tmp_path / "flight"  # P2G_FLIGHT_DIR wins


class TestDumpFlight:
    def test_disabled_tracer_dumps_nothing(self, tmp_path):
        assert dump_flight(NULL_TRACER, "boom", directory=tmp_path) is None

    def test_empty_ring_dumps_nothing(self, tmp_path):
        assert dump_flight(Tracer(), "boom", directory=tmp_path) is None

    def test_dump_is_a_valid_trace_with_flight_envelope(self, tmp_path):
        tr = Tracer(mode="ring", ring=8)
        for i in range(12):
            tr.instant(f"e{i}", "test", "node0", "worker0")
        path = dump_flight(tr, "NodeFailureError: node died",
                           context={"node": "node0"}, directory=tmp_path)
        assert path is not None and path.parent == tmp_path
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == 8  # the ring window
        assert doc["flight"]["reason"].startswith("NodeFailureError")
        assert doc["flight"]["context"] == {"node": "node0"}
        assert doc["flight"]["ring_dropped"] == 4

    def test_consecutive_dumps_get_distinct_paths(self, tmp_path):
        tr = Tracer(mode="ring")
        tr.instant("e", "test", "p", "t")
        a = dump_flight(tr, "first", directory=tmp_path)
        b = dump_flight(tr, "second", directory=tmp_path)
        assert a != b

    def test_unwritable_directory_returns_none(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("")  # mkdir(parents=True) will fail on a file
        tr = Tracer(mode="ring")
        tr.instant("e", "test", "p", "t")
        assert dump_flight(tr, "boom", directory=target / "sub") is None
