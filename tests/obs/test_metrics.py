"""Unit tests for the metrics registry and its snapshot algebra."""

import json
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta,
    flatten,
    merge,
    render,
)


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_set_and_set_max(self):
        g = Gauge()
        g.set(3.0)
        g.set_max(2.0)  # lower: ignored
        assert g.value == 3.0
        g.set_max(7.0)
        assert g.value == 7.0
        g.set(1.0)  # plain set always wins
        assert g.value == 1.0

    def test_histogram_summary(self):
        h = Histogram()
        assert h.snapshot()["count"] == 0
        for v in (1.0, 5.0, 3.0):
            h.observe(v)
        s = h.snapshot()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(9.0)
        assert s["min"] == 1.0 and s["max"] == 5.0
        assert s["mean"] == pytest.approx(3.0)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_computed_gauge_evaluated_at_snapshot(self):
        reg = MetricsRegistry()
        state = {"v": 10.0}
        reg.gauge_fn("live", lambda: state["v"])
        assert reg.snapshot()["live"]["value"] == 10.0
        state["v"] = 20.0
        assert reg.snapshot()["live"]["value"] == 20.0

    def test_raising_gauge_fn_reports_zero(self):
        reg = MetricsRegistry()
        reg.gauge_fn("bad", lambda: 1 / 0)
        assert reg.snapshot()["bad"] == {"type": "gauge", "value": 0.0}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(1.5)
        doc = json.loads(reg.to_json())
        assert doc["c"]["value"] == 2
        assert doc["h"]["count"] == 1

    def test_concurrent_increments_lose_nothing(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.counter("hits").inc()
                reg.histogram("h").observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["hits"]["value"] == 4000
        assert snap["h"]["count"] == 4000


class TestSnapshotAlgebra:
    def test_delta_subtracts_counters_and_histograms(self):
        old = {
            "c": {"type": "counter", "value": 10},
            "g": {"type": "gauge", "value": 5.0},
            "h": {"type": "histogram", "count": 2, "sum": 4.0,
                  "min": 1.0, "max": 3.0, "mean": 2.0},
        }
        new = {
            "c": {"type": "counter", "value": 15},
            "g": {"type": "gauge", "value": 7.0},
            "h": {"type": "histogram", "count": 5, "sum": 13.0,
                  "min": 1.0, "max": 4.0, "mean": 2.6},
        }
        d = delta(new, old)
        assert d["c"]["value"] == 5
        assert d["g"]["value"] == 7.0  # gauges keep the new value
        assert d["h"]["count"] == 3
        assert d["h"]["sum"] == pytest.approx(9.0)
        assert d["h"]["mean"] == pytest.approx(3.0)

    def test_delta_passes_new_names_through(self):
        d = delta({"x": {"type": "counter", "value": 3}}, {})
        assert d["x"]["value"] == 3

    def test_merge_adds_counters_maxes_gauges_widens_histograms(self):
        a = {
            "c": {"type": "counter", "value": 2},
            "g": {"type": "gauge", "value": 9.0},
            "h": {"type": "histogram", "count": 1, "sum": 2.0,
                  "min": 2.0, "max": 2.0, "mean": 2.0},
        }
        b = {
            "c": {"type": "counter", "value": 3},
            "g": {"type": "gauge", "value": 4.0},
            "h": {"type": "histogram", "count": 2, "sum": 10.0,
                  "min": 1.0, "max": 9.0, "mean": 5.0},
        }
        m = merge(a, b)
        assert m["c"]["value"] == 5
        assert m["g"]["value"] == 9.0
        assert m["h"]["count"] == 3
        assert m["h"]["min"] == 1.0 and m["h"]["max"] == 9.0
        assert m["h"]["mean"] == pytest.approx(4.0)

    def test_merge_does_not_mutate_inputs(self):
        a = {"c": {"type": "counter", "value": 1}}
        merge(a, {"c": {"type": "counter", "value": 2}})
        assert a["c"]["value"] == 1

    def test_flatten_expands_histograms(self):
        flat = flatten({
            "c": {"type": "counter", "value": 2},
            "h": {"type": "histogram", "count": 1, "sum": 2.0,
                  "min": 2.0, "max": 2.0, "mean": 2.0},
        })
        assert flat["c"] == 2
        assert flat["h.count"] == 1
        assert flat["h.mean"] == 2.0

    def test_render_is_tabular(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        text = render(reg.snapshot(), title="stats")
        assert text.startswith("stats")
        assert "requests" in text and "3" in text


class TestRuntimeIntegration:
    """run_program wires the registry into queues, fields and timers."""

    def test_run_populates_core_metrics(self):
        from repro.core import run_program
        from repro.workloads import build_mulsum

        program, _sink = build_mulsum()
        reg = MetricsRegistry()
        result = run_program(program, workers=2, max_age=3, metrics=reg)
        assert result.metrics is reg
        flat = flatten(reg.snapshot())
        executed = flat["instances.executed"]
        assert executed > 0
        assert flat["ready.pushes"] >= executed
        assert flat["ready.pops"] == executed
        assert flat["ready.wait_s.count"] == executed
        assert flat["fields.stores"] > 0
        assert flat["fields.fetches"] > 0
        assert flat["fields.bytes_live"] > 0
        assert flat["ready.depth.max"] >= 1
