"""Unit tests for the span tracer and the Chrome trace-event schema."""

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    TraceSchemaError,
    Tracer,
    validate_chrome_trace,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


class TestTracerModes:
    def test_null_tracer_is_disabled_and_records_nothing(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.complete("k", "kernel", "n0", "w0", 0.0, 1.0)
        NULL_TRACER.instant("i", "scheduler", "n0", "w0")
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.event_count() == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Tracer(mode="verbose")

    def test_full_mode_retains_everything(self):
        tr = Tracer(mode="full")
        for i in range(10):
            tr.instant(f"e{i}", "test", "p", "t")
        assert tr.event_count() == 10

    def test_ring_mode_bounds_memory_and_counts_drops(self):
        tr = Tracer(mode="ring", ring=4)
        for i in range(10):
            tr.instant(f"e{i}", "test", "p", "t")
        assert tr.event_count() == 4
        assert tr.ring_dropped == 6
        names = [e["name"] for e in tr.ring_events() if e["ph"] != "M"]
        assert names == ["e6", "e7", "e8", "e9"]  # most recent window

    def test_full_mode_keeps_the_ring_too(self):
        tr = Tracer(mode="full", ring=2)
        for i in range(5):
            tr.instant(f"e{i}", "test", "p", "t")
        assert tr.event_count() == 5
        ring = [e["name"] for e in tr.ring_events() if e["ph"] != "M"]
        assert ring == ["e3", "e4"]


class TestLanesAndEvents:
    def test_lane_allocates_stable_ids_and_metadata(self):
        tr = Tracer()
        a = tr.lane("node0", "worker0")
        b = tr.lane("node0", "worker1")
        c = tr.lane("node1", "worker0")
        assert tr.lane("node0", "worker0") == a  # stable on re-ask
        assert a[0] == b[0] != c[0]  # same process, different processes
        assert a[1] != b[1]
        meta = [e for e in tr.events() if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "node0") in names
        assert ("thread_name", "worker1") in names

    def test_complete_event_timestamps(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)  # origin at t=100
        tr.complete("work", "kernel", "n", "w", 100.001, 100.004,
                    args={"age": 2})
        (ev,) = [e for e in tr.events() if e["ph"] == "X"]
        assert ev["ts"] == pytest.approx(1000.0)  # us since origin
        assert ev["dur"] == pytest.approx(3000.0)
        assert ev["args"] == {"age": 2}

    def test_instant_event_defaults_to_now(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        clock.t = 100.5
        tr.instant("tick", "test", "p", "t", scope="g")
        (ev,) = [e for e in tr.events() if e["ph"] == "i"]
        assert ev["ts"] == pytest.approx(5e5)
        assert ev["s"] == "g"

    def test_concurrent_recording_loses_nothing(self):
        tr = Tracer()

        def record(worker):
            for i in range(200):
                tr.complete(f"k{i}", "kernel", "n", f"w{worker}",
                            tr.now(), tr.now())

        threads = [threading.Thread(target=record, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tr.event_count() == 800


class TestExport:
    def test_write_produces_schema_valid_json(self, tmp_path):
        tr = Tracer()
        tr.complete("k", "kernel", "n0", "w0", tr.now(), tr.now())
        tr.instant("dispatch", "scheduler", "n0", "analyzer")
        path = tmp_path / "trace.json"
        n = tr.write(str(path))
        assert n == 2
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == 2
        assert doc["displayTimeUnit"] == "ms"


class TestSchemaValidation:
    def _doc(self, *events):
        return {"traceEvents": list(events)}

    def test_rejects_non_object_document(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace([])

    def test_rejects_missing_envelope(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace({"events": []})

    def test_rejects_missing_phase(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace(
                self._doc({"name": "x", "pid": 1, "tid": 1, "ts": 0.0})
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace(self._doc(
                {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": -1.0}
            ))

    def test_rejects_bad_instant_scope(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace(self._doc(
                {"name": "x", "ph": "i", "pid": 1, "tid": 1,
                 "ts": 0.0, "s": "z"}
            ))

    def test_rejects_unknown_metadata(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace(self._doc(
                {"name": "mystery", "ph": "M", "pid": 1, "tid": 0,
                 "args": {}}
            ))

    def test_accepts_empty_trace(self):
        assert validate_chrome_trace(self._doc()) == 0


class TestRuntimeIntegration:
    """A traced run emits the per-instance lifecycle spans."""

    def test_run_program_spans(self):
        from repro.core import run_program
        from repro.workloads import build_mulsum

        program, _sink = build_mulsum()
        tr = Tracer()
        result = run_program(program, workers=2, max_age=3, tracer=tr)
        assert result.reason == "idle"
        assert result.tracer is tr
        events = tr.events()
        assert validate_chrome_trace({"traceEvents": events}) > 0
        by_cat = {}
        for ev in events:
            if ev["ph"] != "M":
                by_cat.setdefault(ev.get("cat"), []).append(ev)
        # kernel spans with their lifecycle-phase children
        assert "kernel" in by_cat
        phase_names = {e["name"] for e in by_cat.get("phase", [])}
        assert {"fetch", "native", "store"} <= phase_names
        # the analyzer and scheduler lanes are populated too
        assert "analyzer" in by_cat
        assert "scheduler" in by_cat
        kernel_names = {e["name"] for e in by_cat["kernel"]}
        assert {"init", "mul2", "plus5"} <= kernel_names
        # every kernel span carries its (age, queue wait) context
        assert all("age" in e["args"] and "queue_wait_us" in e["args"]
                   for e in by_cat["kernel"])

    def test_untraced_run_attaches_no_tracer(self):
        from repro.core import run_program
        from repro.workloads import build_mulsum

        program, _sink = build_mulsum()
        result = run_program(program, workers=2, max_age=3)
        assert result.tracer is None
