"""Unit tests for SLO burn tracking and the live telemetry exporter."""

import json
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    SloTracker,
    Telemetry,
    TelemetryConfig,
    TelemetryExporter,
    render_prometheus,
    validate_prometheus_text,
)


class TestSloTracker:
    def _tracker(self, **kw):
        kw.setdefault("window_s", 10.0)
        kw.setdefault("burn_alert", 2.0)
        kw.setdefault("min_frames", 5)
        kw.setdefault("cooldown_s", 100.0)
        kw.setdefault("default_target", 0.1)
        return SloTracker(**kw)

    def test_miss_inferred_from_deadline(self):
        slo = self._tracker()
        slo.configure("s0", deadline_ms=50.0)
        slo.observe("s0", 10.0, t=0.0)
        slo.observe("s0", 80.0, t=0.1)
        d = slo.session_dict("s0")
        assert d["frames"] == 2 and d["misses"] == 1

    def test_unknown_session_ignored(self):
        slo = self._tracker()
        assert slo.observe("ghost", 1000.0) is None
        assert slo.burn_rate("ghost") == 0.0
        assert slo.session_dict("ghost") is None

    def test_alert_fires_at_burn_threshold(self):
        slo = self._tracker()
        slo.configure("s0", deadline_ms=10.0, tier="gold")
        alert = None
        # 5 frames, 1 miss: miss fraction 0.2 / target 0.1 = burn 2.0.
        for i in range(4):
            assert slo.observe("s0", 1.0, t=i * 0.1) is None
        alert = slo.observe("s0", 99.0, t=0.5)
        assert alert is not None
        assert alert.session == "s0" and alert.tier == "gold"
        assert alert.burn_rate == pytest.approx(2.0)
        assert alert.window_misses == 1 and alert.window_frames == 5
        assert slo.alerts("s0") == [alert]

    def test_min_frames_suppresses_early_alerts(self):
        slo = self._tracker(min_frames=50)
        slo.configure("s0", deadline_ms=10.0)
        for i in range(20):
            assert slo.observe("s0", 99.0, t=i * 0.01) is None

    def test_cooldown_rate_limits(self):
        slo = self._tracker(cooldown_s=5.0)
        slo.configure("s0", deadline_ms=10.0)
        fired = []
        slo.on_alert(fired.append)
        for i in range(20):
            slo.observe("s0", 99.0, t=i * 0.1)  # 2 seconds of misses
        assert len(fired) == 1  # one alert, then cooldown
        slo.observe("s0", 99.0, t=10.0)  # past the cooldown
        assert len(fired) == 2

    def test_shed_counts_as_miss(self):
        slo = self._tracker()
        slo.configure("s0", deadline_ms=10.0)
        for i in range(5):
            slo.observe_shed("s0", t=i * 0.1)
        d = slo.session_dict("s0")
        assert d["misses"] == 5
        assert slo.burn_rate("s0") == pytest.approx(10.0)  # 1.0 / 0.1

    def test_window_prunes_old_evidence(self):
        slo = self._tracker(window_s=1.0)
        slo.configure("s0", deadline_ms=10.0)
        for i in range(5):
            slo.observe("s0", 99.0, t=float(i) * 0.1)
        assert slo.burn_rate("s0") == pytest.approx(10.0)
        # 100 hits much later: the old misses age out of the window.
        for i in range(100):
            slo.observe("s0", 1.0, t=100.0 + i * 0.001)
        assert slo.burn_rate("s0") == 0.0

    def test_callback_exception_does_not_propagate(self):
        slo = self._tracker()
        slo.configure("s0", deadline_ms=10.0)

        def boom(alert):
            raise RuntimeError("alert handler crashed")

        slo.on_alert(boom)
        for i in range(10):
            slo.observe("s0", 99.0, t=i * 0.1)  # must not raise

    def test_as_dict_shape(self):
        slo = self._tracker()
        slo.configure("gold0", deadline_ms=40.0, tier="gold",
                      target=0.01)
        slo.observe("gold0", 10.0, t=0.0)
        doc = slo.as_dict()
        entry = doc["sessions"]["gold0"]
        assert entry["tier"] == "gold"
        assert entry["deadline_ms"] == 40.0
        assert entry["target"] == 0.01
        assert "burn_rate" in entry
        assert doc["alerts"] == []


class TestPrometheus:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("frames.completed").inc(7)
        reg.gauge("gate.in_flight").set(3.5)
        h = reg.histogram("stream.latency_ms")
        for v in (1.0, 2.0, 30.0):
            h.observe(v)
        return reg.snapshot()

    def test_render_validates_and_counts(self):
        text = render_prometheus(self._snapshot())
        n = validate_prometheus_text(text)
        assert n >= 3
        assert "p2g_frames_completed 7\n" in text
        assert "# TYPE p2g_stream_latency_ms summary" in text
        assert 'quantile="0.5"' in text
        assert "p2g_stream_latency_ms_count 3" in text

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_prometheus_text("this is not prometheus\n")

    def test_validator_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="no TYPE"):
            validate_prometheus_text("p2g_orphan 1\n")

    def test_empty_snapshot_renders_empty(self):
        assert validate_prometheus_text(render_prometheus({})) == 0


class TestTelemetryExporter:
    def test_sample_merges_sources(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("frames").inc(2)
        b.counter("frames").inc(3)
        exp = TelemetryExporter()
        exp.add_source("a", a.snapshot)
        exp.add_source("b", b.snapshot)
        snap = exp.sample()
        assert snap["frames"]["value"] == 5  # counters sum on merge
        assert exp.latest() == snap
        assert exp.ticks == 1

    def test_failing_source_is_isolated(self):
        reg = MetricsRegistry()
        reg.counter("ok").inc()
        exp = TelemetryExporter()
        exp.add_source("good", reg.snapshot)
        exp.add_source("bad", lambda: 1 / 0)
        snap = exp.sample()
        assert snap["ok"]["value"] == 1

    def test_ring_is_bounded(self):
        exp = TelemetryExporter(ring=4)
        exp.add_source("r", MetricsRegistry().snapshot)
        for _ in range(10):
            exp.sample()
        assert len(exp.snapshots()) == 4

    def test_jsonl_lines(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("frames").inc(4)
        path = tmp_path / "tel.jsonl"
        exp = TelemetryExporter(interval_s=10.0, jsonl_path=path)
        exp.add_source("reg", reg.snapshot)
        exp.start()
        exp.sample()
        exp.stop()  # takes one final sample
        lines = [json.loads(x) for x in
                 path.read_text().strip().splitlines()]
        assert len(lines) >= 2
        assert all("t" in ln and ln["metrics"]["frames"] == 4
                   for ln in lines)

    def test_http_scrape_endpoints(self):
        reg = MetricsRegistry()
        reg.counter("frames").inc(9)
        exp = TelemetryExporter(interval_s=10.0, port=0)
        exp.add_source("reg", reg.snapshot)
        exp.page("slo", lambda: {"sessions": {}})
        exp.start()
        try:
            port = exp.http_port
            assert port is not None and port > 0
            base = f"http://127.0.0.1:{port}"
            text = urllib.request.urlopen(f"{base}/metrics").read().decode()
            assert validate_prometheus_text(text) >= 1
            assert "p2g_frames 9" in text
            snap = json.loads(
                urllib.request.urlopen(f"{base}/snapshot.json").read()
            )
            assert snap["frames"]["value"] == 9
            slo = json.loads(
                urllib.request.urlopen(f"{base}/slo.json").read()
            )
            assert slo == {"sessions": {}}
            with pytest.raises(Exception):
                urllib.request.urlopen(f"{base}/nope")
        finally:
            exp.stop()


class TestTelemetryFacade:
    def test_config_threads_through(self):
        tel = Telemetry(TelemetryConfig(
            slo_min_frames=3, slo_burn_alert=1.5, slo_cooldown_s=0.0,
            interval_s=0.25,
        ))
        assert tel.slo.min_frames == 3
        assert tel.slo.burn_alert == 1.5
        assert tel.exporter.interval_s == 0.25
        assert tel.timeline.enabled and tel.enabled

    def test_pages_registered(self):
        tel = Telemetry()
        assert "slo.json" in tel.exporter._pages
        assert "stages.json" in tel.exporter._pages

    def test_default_alert_dumps_session_flight(self, tmp_path,
                                                monkeypatch, capsys):
        from repro.obs import Tracer

        monkeypatch.setenv("P2G_FLIGHT_DIR", str(tmp_path))
        tel = Telemetry(TelemetryConfig(
            slo_min_frames=3, slo_cooldown_s=0.0,
        ))
        tracer = Tracer(mode="ring")
        tracer.instant("warm", "test", "p", "t")  # non-empty ring
        tel.attach_tracer(tracer)
        tel.slo.configure("s1", deadline_ms=10.0, tier="gold")
        for i in range(5):
            tel.slo.observe("s1", 99.0, t=i * 0.1)
        assert tel.flight_paths, "breach must dump a flight recording"
        doc = json.loads(tel.flight_paths[0].read_text())
        assert doc["flight"]["reason"] == "slo-breach"
        assert doc["flight"]["context"]["session"] == "s1"
        assert doc["flight"]["context"]["tier"] == "gold"
        assert "[slo] s1 (gold)" in capsys.readouterr().err

    def test_start_stop_idempotent(self):
        tel = Telemetry(TelemetryConfig(interval_s=10.0))
        tel.start()
        tel.start()
        tel.stop()
        tel.stop()
        assert tel.exporter.ticks >= 1  # the final flush sample


class TestStreamIntegration:
    """End-to-end acceptance property: a live run's per-stage bucket
    sums reconcile with its end-to-end latency histogram."""

    def test_stage_breakdown_reconciles_with_e2e_latency(self):
        from repro.core import run_program
        from repro.workloads import MJPEGConfig, build_mjpeg_stream
        from repro.stream import StreamConfig

        cfg = MJPEGConfig(width=32, height=32, frames=12)
        scfg = StreamConfig(fps=0, max_frames=12, lag_window=4,
                            deadline_ms=5000.0)
        program, _sink, binding = build_mjpeg_stream(cfg, scfg)
        tel = Telemetry(TelemetryConfig(interval_s=10.0))
        result = run_program(program, workers=2, batch=4,
                             stream=binding, telemetry=tel)
        rep = result.stream
        assert rep.completed == 12
        # Every completed frame was attributed.
        assert tel.timeline.frames("") == 12
        # Critical-path attribution partitions the window exactly, so
        # the bucket means sum to the e2e mean (both sides are means
        # over the same frames).
        bucket_sum = sum(s["mean"] for s in rep.stages.values())
        assert bucket_sum == pytest.approx(
            rep.latency_ms["mean"], rel=0.05
        )
        # SLO summary rides on the report; nothing breached.
        assert rep.slo["frames"] == 12
        assert rep.slo["deadline_ms"] == 5000.0
        assert rep.slo["misses"] == 0
        # The report survives JSON round-tripping (CLI --stream-json).
        doc = json.loads(json.dumps(rep.as_dict()))
        assert set(doc["stages"]) == set(rep.stages)
        assert doc["slo"]["frames"] == 12
