"""Unit tests for frame-path latency attribution (repro.obs.timeline)."""

import math

import pytest

from repro.obs import (
    BUCKETS,
    MetricsRegistry,
    TimelineRecorder,
    attribute_spans,
    flatten,
    stage_summary,
)


def _total(parts: dict) -> float:
    return sum(parts.values())


class TestAttributeSpans:
    def test_empty_spans_all_other(self):
        parts = attribute_spans([], 0.0, 1.0)
        assert parts["other"] == pytest.approx(1.0)
        assert _total(parts) == pytest.approx(1.0)

    def test_exact_partition_no_overlap(self):
        spans = [("gate", 0.0, 0.2), ("queue", 0.2, 0.5),
                 ("compute", 0.5, 0.9)]
        parts = attribute_spans(spans, 0.0, 1.0)
        assert parts["gate"] == pytest.approx(0.2)
        assert parts["queue"] == pytest.approx(0.3)
        assert parts["compute"] == pytest.approx(0.4)
        assert parts["other"] == pytest.approx(0.1)
        assert _total(parts) == pytest.approx(1.0)

    def test_overlap_charges_highest_priority(self):
        # compute overlaps queue: the overlapping instant goes to
        # compute (critical path), never double-counted.
        spans = [("queue", 0.0, 1.0), ("compute", 0.4, 0.6)]
        parts = attribute_spans(spans, 0.0, 1.0)
        assert parts["compute"] == pytest.approx(0.2)
        assert parts["queue"] == pytest.approx(0.8)
        assert _total(parts) == pytest.approx(1.0)

    def test_priority_order_matches_buckets(self):
        # Every pair: the earlier bucket in BUCKETS wins the overlap.
        for hi, lo in zip(BUCKETS, BUCKETS[1:]):
            if lo == "other":
                continue
            parts = attribute_spans(
                [(lo, 0.0, 1.0), (hi, 0.0, 1.0)], 0.0, 1.0
            )
            assert parts[hi] == pytest.approx(1.0), (hi, lo)
            assert parts[lo] == 0.0

    def test_spans_clipped_to_window(self):
        spans = [("compute", -5.0, 0.5), ("store", 0.5, 99.0)]
        parts = attribute_spans(spans, 0.0, 1.0)
        assert parts["compute"] == pytest.approx(0.5)
        assert parts["store"] == pytest.approx(0.5)
        assert _total(parts) == pytest.approx(1.0)

    def test_unknown_bucket_loses_to_known_and_falls_to_other(self):
        parts = attribute_spans(
            [("warp", 0.0, 1.0), ("queue", 0.0, 0.5)], 0.0, 1.0
        )
        # Unknown buckets rank below every known one and have no
        # accumulator of their own: uncovered time lands in "other".
        assert parts["queue"] == pytest.approx(0.5)
        assert parts["other"] == pytest.approx(0.5)

    def test_degenerate_window(self):
        parts = attribute_spans([("compute", 0.0, 1.0)], 1.0, 1.0)
        assert _total(parts) == 0.0

    def test_sum_invariant_under_dense_overlap(self):
        spans = [
            (BUCKETS[i % 6], i * 0.01, i * 0.01 + 0.3)
            for i in range(50)
        ]
        parts = attribute_spans(spans, 0.0, 0.7)
        assert _total(parts) == pytest.approx(0.7, abs=1e-9)


class TestTimelineRecorder:
    def test_finish_returns_ms_breakdown(self):
        tl = TimelineRecorder()
        tl.begin("s0", 1, 10.0)
        tl.span("s0", 1, "gate", 10.0, 10.1)
        tl.span("s0", 1, "compute", 10.1, 10.4)
        parts = tl.finish("s0", 1, 10.5)
        assert parts["gate"] == pytest.approx(100.0)
        assert parts["compute"] == pytest.approx(300.0)
        assert parts["other"] == pytest.approx(100.0)
        assert sum(parts.values()) == pytest.approx(500.0)
        assert tl.frames("s0") == 1
        assert tl.in_flight() == 0

    def test_span_without_begin_is_dropped(self):
        # Non-stream runs hit the hook points with no driver begin():
        # the recorder must stay empty.
        tl = TimelineRecorder()
        for i in range(100):
            tl.span("", i, "compute", 0.0, 1.0)
        assert tl.in_flight() == 0
        assert tl.finish("", 0, 2.0) is None

    def test_disabled_recorder_records_nothing(self):
        tl = TimelineRecorder(enabled=False)
        tl.begin("", 0, 0.0)
        tl.span("", 0, "compute", 0.0, 1.0)
        assert tl.in_flight() == 0
        assert tl.finish("", 0, 1.0) is None

    def test_discard_forgets_frame(self):
        tl = TimelineRecorder()
        tl.begin("", 0, 0.0)
        tl.discard("", 0)
        assert tl.in_flight() == 0
        assert tl.finish("", 0, 1.0) is None

    def test_in_flight_bounded(self):
        tl = TimelineRecorder()
        for i in range(tl.MAX_IN_FLIGHT + 10):
            tl.begin("", i, float(i))
        assert tl.in_flight() == tl.MAX_IN_FLIGHT

    def test_stages_rollup_and_sessions(self):
        tl = TimelineRecorder()
        for age in range(4):
            tl.begin("a", age, 0.0)
            tl.span("a", age, "compute", 0.0, 0.010)
            tl.finish("a", age, 0.010)
        tl.begin("b", 0, 0.0)
        tl.finish("b", 0, 0.001)
        assert tl.sessions() == ["a", "b"]
        stages = tl.stages("a")
        assert stages["compute"]["count"] == 4
        assert stages["compute"]["mean"] == pytest.approx(10.0, rel=1e-3)
        assert "p50" in stages["compute"] and "p99" in stages["compute"]
        doc = tl.as_dict()
        assert doc["frames"] == {"a": 4, "b": 1}
        assert set(doc["stages"]) == {"a", "b"}

    def test_feed_registry_exports_gauges(self):
        tl = TimelineRecorder()
        tl.begin("s0", 0, 0.0)
        tl.span("s0", 0, "compute", 0.0, 0.002)
        tl.finish("s0", 0, 0.002)
        reg = MetricsRegistry()
        tl.feed_registry(reg, prefix="stream")
        flat = flatten(reg.snapshot())
        assert flat["stream.s0.stage.compute_ms.mean"] == pytest.approx(
            2.0, rel=1e-3
        )
        # count/sum are skipped: these are gauge re-exports, not
        # histograms.
        assert "stream.s0.stage.compute_ms.count" not in flat

    def test_stage_summary_renders_nonempty_buckets_only(self):
        tl = TimelineRecorder()
        tl.begin("", 0, 0.0)
        tl.span("", 0, "compute", 0.0, 0.004)
        tl.finish("", 0, 0.005)
        text = stage_summary(tl.stages(""))
        assert "compute" in text and "p50" in text and "p99" in text
        assert "ipc" not in text  # bucket with zero observations

    def test_reconciles_with_e2e_window(self):
        # The acceptance property, in miniature: bucket sums equal the
        # end-to-end window for every frame, so the means reconcile.
        tl = TimelineRecorder()
        e2e = []
        for age in range(16):
            t0, t1 = age * 1.0, age * 1.0 + 0.050 + age * 0.001
            tl.begin("", age, t0)
            tl.span("", age, "gate", t0, t0 + 0.010)
            tl.span("", age, "compute", t0 + 0.015, t1 - 0.005)
            tl.finish("", age, t1)
            e2e.append((t1 - t0) * 1000.0)
        stages = tl.stages("")
        bucket_mean_sum = sum(s["mean"] for s in stages.values())
        e2e_mean = sum(e2e) / len(e2e)
        assert math.isclose(bucket_mean_sum, e2e_mean, rel_tol=1e-6)
