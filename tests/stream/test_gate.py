"""CreditGate unit tests: window admission, out-of-order grants,
close/timeout unblocking."""

import threading
import time

from repro.stream import CreditGate


def test_admits_first_window_without_credit():
    gate = CreditGate(4)
    for age in range(4):  # frontier −1 covers ages 0..window−1
        assert gate.admit(age, timeout=0.5)


def test_blocks_past_window_until_grant():
    gate = CreditGate(2)
    assert gate.admit(0, timeout=0.5)
    assert gate.admit(1, timeout=0.5)
    assert not gate.admit(2, timeout=0.05)  # age 0 not drained yet
    gate.grant(0)
    assert gate.admit(2, timeout=0.5)


def test_out_of_order_grants_advance_contiguously():
    gate = CreditGate(2)
    assert gate.admit(0, timeout=0.5)
    assert gate.admit(1, timeout=0.5)
    gate.grant(1)  # early: frontier must NOT jump over age 0
    assert gate.completed_through() == -1
    assert not gate.admit(2, timeout=0.05)
    gate.grant(0)  # 0,1 now contiguous: frontier = 1
    assert gate.completed_through() == 1
    assert gate.admit(2, timeout=0.5)
    assert gate.admit(3, timeout=0.5)


def test_close_unblocks_waiter():
    gate = CreditGate(1)
    assert gate.admit(0, timeout=0.5)
    out = {}

    def waiter():
        out["admitted"] = gate.admit(1, timeout=5.0)

    t = threading.Thread(target=waiter)
    t.start()
    time.sleep(0.05)
    gate.close()
    t.join(timeout=2.0)
    assert not t.is_alive()
    assert out["admitted"] is False


def test_blocked_seconds_accumulate():
    gate = CreditGate(1)
    assert gate.admit(0)
    assert not gate.admit(1, timeout=0.05)
    assert gate.blocked_s > 0.0
