"""Multi-tenant stream serving: N sessions, one runtime.

The load-bearing properties:

* **Byte-identity per tenant** — every co-resident session's output is
  byte-for-byte the output of the same spec run solo (threads,
  processes, cluster).  Namespacing, fair dispatch and per-session
  retirement must be invisible in the data.
* **Isolation** — arbitrary interleavings of session start/stop never
  cross-contaminate field data or credits (Hypothesis property), and
  one session ending mid-flight never closes another's gate or frees
  another's ages.
* **Tier-aware overload** — under starvation, gold keeps every frame
  while best-effort sessions shed; the shed/degrade split is a pure
  function of ``(shed_seed, age)``.
* **Chaos** — a node killed under four live sessions recovers via the
  fence/replay path with no cross-session replay leakage; failures
  archive a seeded repro JSON like the other chaos suites.
"""

import threading
import time

import pytest

from repro.core import run_program
from repro.core.kernels import KernelDef
from repro.core.runtime import KernelInstance, ReadyQueue
from repro.stream import (
    AdmissionError,
    SessionManager,
    SessionSpec,
    StreamConfig,
    merge_sessions,
    shed_fraction,
)
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline


def make_session(name, *, frames=6, seed=1234, size=32, **scfg_kw):
    """One tenant spec plus its sink and config (for the solo
    baseline)."""
    cfg = MJPEGConfig(width=size, height=size, frames=frames, seed=seed)
    kw = dict(fps=0, max_frames=frames, lag_window=4)
    kw.update(scfg_kw)
    program, sink, binding = build_mjpeg_stream(cfg, StreamConfig(**kw))
    return SessionSpec(name, program, binding), sink, cfg


class TestFairQueue:
    """The ready queue's "fair" policy: deficit round-robin across
    session bins, age priority within a bin."""

    def _inst(self, session, age, i=0):
        k = KernelDef(name=f"{session}.k", body=lambda ctx: None,
                      has_age=True, index_vars=("x",), domain={"x": 64})
        return KernelInstance(k, age=age, index=(i,))

    def test_round_robin_across_sessions(self):
        q = ReadyQueue(scheduling="fair")
        for age in range(3):
            q.push(self._inst("a", age))
            q.push(self._inst("b", age))
        sessions = []
        for _ in range(6):
            inst, _ = q.pop_timed()
            sessions.append(inst.kernel.name.split(".")[0])
        # Alternates — neither session gets two turns in a row.
        assert sessions in (["a", "b"] * 3, ["b", "a"] * 3)

    def test_weights_bias_dispatch(self):
        q = ReadyQueue(scheduling="fair", session_weights={"g": 2})
        for age in range(4):
            q.push(self._inst("g", age))
            q.push(self._inst("e", age))
        order = []
        for _ in range(6):
            inst, _ = q.pop_timed()
            order.append(inst.kernel.name.split(".")[0])
        # Quantum 2 vs 1: gold draws two dispatch slots per round.
        assert order in (["g", "g", "e"] * 2, ["e", "g", "g"] * 2)

    def test_age_priority_within_session(self):
        q = ReadyQueue(scheduling="fair")
        for age in (5, 1, 3):
            q.push(self._inst("a", age))
        ages = [q.pop_timed()[0].age for _ in range(3)]
        assert ages == [1, 3, 5]

    def test_min_age_scoped_per_session(self):
        q = ReadyQueue(scheduling="fair")
        q.push(self._inst("a", 7))
        q.push(self._inst("b", 2))
        assert q.min_age("a") == 7
        assert q.min_age("b") == 2
        assert q.min_age() == 2
        assert q.min_age("c") is None

    def test_batches_never_span_sessions(self):
        q = ReadyQueue(scheduling="fair")
        ka = KernelDef(name="a.k", body=lambda ctx: None, has_age=True,
                       index_vars=("x",), domain={"x": 64})
        kb = KernelDef(name="b.k", body=lambda ctx: None, has_age=True,
                       index_vars=("x",), domain={"x": 64})
        for i in range(3):
            q.push(KernelInstance(ka, age=0, index=(i,)))
            q.push(KernelInstance(kb, age=0, index=(i,)))
        batch, _ = q.pop_batch(16)
        names = {inst.kernel.name for inst in batch}
        assert len(names) == 1  # one session's run only
        assert len(batch) == 3


class TestByteIdentity:
    """Every session byte-identical to its solo batch run."""

    def test_threads_three_sessions(self):
        specs, sinks, cfgs = [], {}, {}
        for i in range(3):
            spec, sink, cfg = make_session(f"s{i}", seed=100 + i)
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        mgr = SessionManager(specs, workers=4)
        result = mgr.run(timeout=120)
        assert result.reason == "idle"
        rep = result.stream
        assert set(rep.sessions) == {"s0", "s1", "s2"}
        for name, r in rep.sessions.items():
            assert r.session == name
            assert r.offered == r.completed == 6
            assert r.shed == 0 and r.degraded == 0
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )

    def test_processes_backend_with_batching(self):
        specs, sinks, cfgs = [], {}, {}
        for i in range(2):
            spec, sink, cfg = make_session(f"p{i}", frames=5,
                                           seed=500 + i)
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        mgr = SessionManager(specs, workers=2, backend="processes",
                             batch=8)
        result = mgr.run(timeout=300)
        assert result.reason == "idle"
        for name in sinks:
            r = result.stream.sessions[name]
            assert r.completed == 5
            # Session-scoped retirement ran (shared-memory segments of
            # drained ages were actually freed).
            assert r.freed_bytes > 0
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )

    def test_cluster_sessions(self):
        from repro.dist import Cluster
        from repro.stream import MultitenantReport

        specs, sinks, cfgs = [], {}, {}
        for i in range(3):
            spec, sink, cfg = make_session(f"c{i}", seed=300 + i)
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        merged = merge_sessions(specs)
        result = Cluster(merged, {"n0": 2, "n1": 2}).run(
            sessions=specs, timeout=120, stall_timeout=60
        )
        assert isinstance(result.stream, MultitenantReport)
        assert result.cross_node_messages() > 0
        for name in sinks:
            r = result.stream.sessions[name]
            assert r.offered == r.completed == 6
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )

    def test_single_session_matches_solo_stream_run(self):
        """A one-tenant manager is just a namespaced PR 5 run."""
        spec, sink, cfg = make_session("only", frames=8)
        mgr = SessionManager([spec], workers=2)
        result = mgr.run(timeout=120)
        assert result.reason == "idle"
        assert sink.stream() == mjpeg_baseline(config=cfg)
        # Per-session metrics landed under the namespaced prefix.
        snap = mgr.node.metrics.snapshot()
        assert snap["stream.only.frames.completed"]["value"] == 8


class TestAdmission:
    def test_reject_past_capacity(self):
        specs = [make_session(f"r{i}")[0] for i in range(3)]
        mgr = SessionManager(specs[:2], max_sessions=2)
        with pytest.raises(AdmissionError):
            mgr.add_session(specs[2])

    def test_capacity_defaults_scale_with_workers(self):
        mgr = SessionManager(workers=3)
        assert mgr.capacity == 12

    def test_queue_admits_when_slot_frees(self):
        specs, sinks, cfgs = [], {}, {}
        for i in range(3):
            spec, sink, cfg = make_session(f"q{i}", frames=4,
                                           seed=700 + i)
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        mgr = SessionManager(specs, workers=2, max_sessions=1,
                             admission="queue")
        assert mgr.sessions == ["q0", "q1", "q2"]
        result = mgr.run(timeout=120)
        assert result.reason == "idle"
        # Every queued session eventually streamed to completion,
        # byte-identically.
        for name in sinks:
            assert result.stream.sessions[name].completed == 4
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )


class TestTierFairness:
    """Starvation: offered rate beyond capacity.  Gold never sheds;
    best-effort absorbs the overload."""

    def _overloaded_specs(self, *, seed=0, degrade_ratio=0.0):
        specs, sinks = [], {}
        tiers = {"gold0": "gold", "be0": "best-effort",
                 "be1": "best-effort"}
        for name, tier in tiers.items():
            spec, sink, _ = make_session(
                name, frames=30, size=64, seed=42,
                fps=400.0, lag_window=2, deadline_ms=8.0,
                shed_seed=seed, degrade_ratio=degrade_ratio,
                qos_class=tier,
            )
            specs.append(spec)
            sinks[name] = sink
        return specs, sinks

    def test_gold_zero_shed_while_best_effort_sheds(self):
        specs, _ = self._overloaded_specs()
        mgr = SessionManager(specs, workers=1)
        result = mgr.run(timeout=300)
        rep = result.stream
        gold = rep.sessions["gold0"]
        assert gold.qos_class == "gold"
        assert gold.shed == 0 and gold.degraded == 0
        assert gold.completed == gold.offered == 30
        be_shed = sum(
            rep.sessions[n].shed for n in ("be0", "be1")
        )
        assert be_shed > 0
        by_class = rep.by_class()
        assert by_class["gold"]["shed"] == 0
        assert by_class["best-effort"]["shed"] == be_shed

    def test_shed_split_is_pure_function_of_seed_and_age(self):
        specs, _ = self._overloaded_specs(seed=77, degrade_ratio=0.4)
        mgr = SessionManager(specs, workers=1)
        rep = mgr.run(timeout=300).stream
        checked = 0
        for name in ("be0", "be1"):
            r = rep.sessions[name]
            assert r.shed_seed == 77
            # Which ages were *late* depends on timing, but given a
            # late age the shed-vs-degrade verdict is the deterministic
            # hash split — reproducible from the report alone.
            for age in r.shed_ages:
                assert shed_fraction(77, age) >= 0.4
                checked += 1
            for age in r.degraded_ages:
                assert shed_fraction(77, age) < 0.4
                checked += 1
        assert checked > 0  # starvation actually occurred


class TestTeardownIsolation:
    """One session ending mid-flight: its gate closes and its ages
    free, the co-tenants notice nothing (the satellite fix for the
    formerly driver-global gate/retirer)."""

    def test_stop_one_session_others_complete(self):
        specs, sinks, cfgs = [], {}, {}
        for i in range(3):
            spec, sink, cfg = make_session(
                f"t{i}", frames=20, seed=900 + i, fps=100.0,
                max_frames=20,
            )
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        mgr = SessionManager(specs, workers=2)
        mgr.start()
        time.sleep(0.06)  # a few frames into every stream
        mgr.stop_session("t1")
        result = mgr.join(timeout=120)
        assert result.reason == "idle"  # no stuck credits or tokens
        rep = result.stream
        # The stopped session drained a strict prefix...
        t1 = rep.sessions["t1"]
        assert t1.completed < 20
        assert t1.completed == sinks["t1"].frame_count()
        solo = mjpeg_baseline(config=cfgs["t1"])
        assert solo.startswith(sinks["t1"].stream())
        # ...its gate is closed (no further admissions)...
        assert mgr.drivers["t1"].gate.admit(t1.completed + 100) is False
        # ...and the survivors saw their full stream, byte-identical.
        for name in ("t0", "t2"):
            assert rep.sessions[name].completed == 20
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )

    def test_finished_session_frees_its_fields_only(self):
        """A short session ends while a long one is mid-flight: the
        short tenant's ages retire without disturbing the long one."""
        short, short_sink, short_cfg = make_session(
            "short", frames=3, seed=21
        )
        long_, long_sink, long_cfg = make_session(
            "long", frames=30, seed=22
        )
        mgr = SessionManager([short, long_], workers=2)
        result = mgr.run(timeout=120)
        assert result.reason == "idle"
        rep = result.stream
        assert rep.sessions["short"].completed == 3
        assert rep.sessions["long"].completed == 30
        assert rep.sessions["long"].freed_bytes > 0
        assert short_sink.stream() == mjpeg_baseline(config=short_cfg)
        assert long_sink.stream() == mjpeg_baseline(config=long_cfg)


class TestStartStopInterleavings:
    """Hypothesis property: arbitrary admission orders, capacities and
    stop schedules never cross-contaminate sessions — every sink holds
    a frame-aligned byte prefix of its solo baseline, and credits never
    leak across gates."""

    def _run_schedule(self, order, capacity, stop_after_ms):
        n = len(order)
        specs, sinks, cfgs = {}, {}, {}
        for i in range(n):
            spec, sink, cfg = make_session(
                f"h{i}", frames=4, size=16, seed=40 + i,
                fps=200.0, max_frames=4,
            )
            specs[spec.name] = spec
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        ordered = [specs[f"h{i}"] for i in order]
        mgr = SessionManager(ordered, workers=2,
                             max_sessions=capacity,
                             admission="queue")
        mgr.start()
        stops = sorted(
            (ms, f"h{i}") for i, ms in enumerate(stop_after_ms)
            if ms is not None
        )
        t0 = time.perf_counter()
        for ms, name in stops:
            delay = ms / 1000.0 - (time.perf_counter() - t0)
            if delay > 0:
                time.sleep(delay)
            mgr.stop_session(name)
        result = mgr.join(timeout=120)
        assert result.reason == "idle"
        for i in range(n):
            name = f"h{i}"
            sink, drv = sinks[name], mgr.drivers[name]
            # Credits never crossed sessions: this gate saw exactly as
            # many completions as this sink saw frames.
            assert drv.completed_count() == sink.frame_count()
            assert drv.report().completed <= drv.report().offered
            # Field data never crossed sessions: the output is a
            # byte-prefix of this session's solo run.
            solo = mjpeg_baseline(config=cfgs[name])
            assert solo.startswith(sink.stream())
            if stop_after_ms[i] is None and capacity >= n:
                assert sink.stream() == solo

    def test_property_interleavings(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        @st.composite
        def schedules(draw):
            n = draw(st.integers(min_value=2, max_value=3))
            order = draw(st.permutations(list(range(n))))
            capacity = draw(st.integers(min_value=1, max_value=n))
            stops = draw(st.lists(
                st.one_of(
                    st.none(),
                    st.integers(min_value=0, max_value=30),
                ),
                min_size=n, max_size=n,
            ))
            return order, capacity, stops

        @settings(
            max_examples=8, deadline=None,
            suppress_health_check=[
                HealthCheck.too_slow,
                HealthCheck.data_too_large,
            ],
        )
        @given(schedules())
        def prop(schedule):
            order, capacity, stops = schedule
            self._run_schedule(order, capacity, stops)

        prop()


class TestChaosMultitenant:
    """Node kill under four live sessions: the fence/replay recovery
    must restore every surviving session byte-identically, with no
    cross-session replay leakage.  Failures archive the fault schedule
    as a seeded repro JSON (CI uploads it)."""

    NODES = {"n0": 2, "n1": 2, "n2": 1}

    def _dump_repro(self, schedule, seed):
        import json
        import os
        import pathlib

        out_dir = pathlib.Path(os.environ.get("CHAOS_REPRO_DIR", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"chaos-repro-multitenant-seed{seed}.json"
        path.write_text(json.dumps(schedule.to_json(), indent=2) + "\n")
        return path

    @pytest.mark.parametrize("seed", [11, 23])
    def test_node_kill_four_sessions_byte_identical(self, seed):
        from repro.dist import Cluster, FaultInjector, FaultSchedule
        from repro.dist.recovery import RecoveryConfig

        specs, sinks, cfgs = [], {}, {}
        for i in range(4):
            spec, sink, cfg = make_session(
                f"k{i}", frames=5, seed=60 + i
            )
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        schedule = FaultSchedule.random(
            sorted(self.NODES), seed, kinds=("kill",), n_faults=1
        )
        merged = merge_sessions(specs)
        try:
            result = Cluster(merged, dict(self.NODES)).run(
                sessions=specs, timeout=300, stall_timeout=120,
                faults=FaultInjector(schedule),
                recovery=RecoveryConfig(
                    heartbeat_interval=0.01, heartbeat_timeout=0.1
                ),
            )
            assert result.reason == "idle"
            rep = result.stream
            for name in sinks:
                r = rep.sessions[name]
                # No replay leakage: completions are counted once per
                # session (a cross-session duplicate would overshoot).
                assert r.completed == r.offered == 5
                assert sinks[name].stream() == mjpeg_baseline(
                    config=cfgs[name]
                )
        except BaseException:
            path = self._dump_repro(schedule, seed)
            print(f"chaos repro schedule written to {path}")
            raise


class TestNamespacing:
    """The program rewrite itself."""

    def test_names_are_prefixed_and_bodies_untouched(self):
        from repro.stream import namespace_program, session_of_name

        spec, _, _ = make_session("ns")
        sub = namespace_program(spec.program, "ns")
        assert all(f.startswith("ns.") for f in sub.fields)
        assert all(k.startswith("ns.") for k in sub.kernels)
        for k in sub.kernels.values():
            orig = spec.program.kernels[k.name.removeprefix("ns.")]
            assert k.body is orig.body
            for s, os_ in zip(k.stores, orig.stores):
                # Bodies emit un-namespaced keys; the store spec's key
                # stays pinned to the original emit key.
                assert s.key == os_.emit_key
                assert s.field == "ns." + os_.field
        assert session_of_name("ns.ydct") == "ns"
        assert session_of_name("ydct") == ""

    def test_invalid_session_names_rejected(self):
        spec, _, _ = make_session("ok")
        for bad in ("", "a.b", "a/b"):
            with pytest.raises(ValueError):
                SessionSpec(bad, spec.program, spec.binding)

    def test_duplicate_sessions_rejected(self):
        spec, _, _ = make_session("dup")
        with pytest.raises(ValueError):
            merge_sessions([spec, spec])
        mgr = SessionManager([spec])
        with pytest.raises(ValueError):
            mgr.add_session(spec)

    def test_solo_program_unaffected_by_namespacing(self):
        """Namespacing copies; the original spec still runs solo."""
        spec, sink, cfg = make_session("copy", frames=4)
        from repro.stream import namespace_program

        namespace_program(spec.program, "copy")
        result = run_program(spec.program, workers=2,
                             stream=spec.binding)
        assert result.stream.completed == 4
        assert sink.stream() == mjpeg_baseline(config=cfg)
