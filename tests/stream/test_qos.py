"""QoS policy tests: deadline semantics with an injected clock, and the
Hypothesis property that shed decisions are a pure function of
(seed, age, lateness) — identical across runs."""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.deadlines import Timer
from repro.stream import QosPolicy, shed_fraction


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def make_policy(**kw):
    clock = FakeClock()
    timer = Timer("stream", clock)
    policy = QosPolicy(timer=timer, **kw)
    return policy, clock


def test_on_time_frame_runs():
    policy, clock = make_policy(deadline_ms=100.0, fps=25.0)
    clock.t = 0.010  # frame 0 offered 10ms in: well within budget
    d = policy.decide(0)
    assert d.action == "run"
    assert not d.late
    assert policy.timer.misses == 0


def test_late_frame_shed_and_miss_counted():
    policy, clock = make_policy(deadline_ms=100.0, fps=25.0)
    clock.t = 0.250  # frame 0 (arrival 0ms) offered at 250ms: late
    d = policy.decide(0)
    assert d.action == "shed"
    assert d.late
    assert d.lateness_ms == pytest.approx(250.0)
    assert policy.timer.misses == 1


def test_arrival_schedule_follows_fps():
    policy, clock = make_policy(deadline_ms=100.0, fps=25.0)
    # Frame 10 arrives at 400ms; offered at 450ms it is only 50ms late
    # against a 100ms budget: runs.
    clock.t = 0.450
    assert policy.decide(10).action == "run"
    # Offered at 520ms it is 120ms late: shed.
    clock.t = 0.520
    assert policy.decide(10).action != "run"


def test_degrade_ratio_extremes():
    clock = FakeClock()
    always = QosPolicy(
        10.0, 25.0, degrade_ratio=1.0, timer=Timer("a", clock)
    )
    never = QosPolicy(
        10.0, 25.0, degrade_ratio=0.0, timer=Timer("b", clock)
    )
    clock.t = 10.0  # everything hopelessly late
    for age in range(20):
        assert always.decide(age).action == "degrade"
        assert never.decide(age).action == "shed"


def test_shed_fraction_range_and_determinism():
    vals = [shed_fraction(42, a) for a in range(1000)]
    assert all(0.0 <= v < 1.0 for v in vals)
    assert vals == [shed_fraction(42, a) for a in range(1000)]
    # Distinct seeds disagree somewhere (not a constant function).
    assert vals != [shed_fraction(43, a) for a in range(1000)]


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    ratio=st.floats(min_value=0.0, max_value=1.0),
    ages=st.lists(
        st.integers(min_value=0, max_value=10_000),
        max_size=50,
        unique=True,
    ),
    offsets=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=50, max_size=50
    ),
)
def test_decisions_identical_across_runs(seed, ratio, ages, offsets):
    """Two runs experiencing the same lateness shed identically: the
    policy is a pure function of (seed, age, clock) with no hidden RNG
    or ordering state."""

    def run(age_order):
        clock = FakeClock()
        policy = QosPolicy(
            50.0,
            25.0,
            seed=seed,
            degrade_ratio=ratio,
            timer=Timer("stream", clock),
        )
        out = {}
        for age in age_order:
            clock.t = age / 25.0 + offsets[age % len(offsets)]
            out[age] = policy.decide(age).action
        return out

    first = run(ages)
    second = run(ages)
    assert first == second
    # Order independence: the verdict for an age doesn't depend on
    # which frames were decided before it.
    shuffled = run(list(reversed(ages)))
    assert shuffled == first
