"""End-to-end live runs on the thread backend: bounded memory under the
credit window, byte-identity with the batch encoder, deterministic
load shedding, and the observability surface."""

import json

import pytest

from repro.core import run_program
from repro.stream import StreamConfig, shed_fraction
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline


def per_age_bytes(program) -> int:
    """Field bytes one age occupies when fully materialized."""
    total = 0
    for f in program.fields.values():
        elems = 1
        for n in f.shape:
            elems *= n
        total += elems * f.np_dtype.itemsize
    return total


def run_live(cfg, scfg, workers=2):
    program, sink, binding = build_mjpeg_stream(cfg, scfg)
    result = run_program(program, workers=workers, stream=binding)
    return program, sink, result.stream, result


def test_bounded_memory_over_500_frames():
    """Peak live field bytes scale with the lag window, not the
    stream length — the retirement + backpressure tentpole claim."""
    cfg = MJPEGConfig(width=32, height=32, frames=500)
    scfg = StreamConfig(fps=0, max_frames=500, lag_window=8)
    program, _, rep, _ = run_live(cfg, scfg)
    assert rep.offered == 500
    assert rep.completed == 500
    age_bytes = per_age_bytes(program)
    total = 500 * age_bytes
    # Generous constant: window (8) + keep_ages (1) + in-flight slack,
    # but nowhere near O(frames).
    assert rep.peak_live_bytes <= age_bytes * (scfg.lag_window * 2 + 4)
    assert rep.peak_live_bytes < total / 10
    # Retirement actually reclaimed the overwhelming majority.
    assert rep.freed_bytes > age_bytes * 400


def test_live_stream_byte_identical_to_batch():
    cfg = MJPEGConfig(width=64, height=64, frames=24)
    scfg = StreamConfig(fps=0, max_frames=24, lag_window=4)
    _, sink, rep, _ = run_live(cfg, scfg)
    assert rep.shed == 0 and rep.degraded == 0
    assert sink.stream() == mjpeg_baseline(config=cfg)


def test_duration_bounds_offered_frames():
    cfg = MJPEGConfig(width=32, height=32, frames=50)
    scfg = StreamConfig(fps=50.0, duration=0.2, lag_window=8)
    _, _, rep, _ = run_live(cfg, scfg)
    # The cutoff is on the frame *schedule* (age/fps >= duration), so
    # the count is exact: frames 0..9 fit before the 200ms mark.
    assert rep.offered == 10
    assert rep.completed == 10


def test_shedding_is_deterministic_and_seed_split():
    """A hopelessly starved stream sheds every frame; which late frames
    are shed vs degraded is the pure seeded hash — identical run to
    run, and flipped by changing the seed."""
    cfg = MJPEGConfig(width=32, height=32, frames=40)

    def starved(seed):
        scfg = StreamConfig(
            fps=1000.0,
            max_frames=40,
            lag_window=4,
            deadline_ms=1e-6,
            shed_seed=seed,
            degrade_ratio=0.5,
        )
        _, _, rep, _ = run_live(cfg, scfg)
        return rep

    a = starved(42)
    b = starved(42)
    assert a.offered == b.offered == 40
    assert a.shed_ages == b.shed_ages
    assert a.degraded_ages == b.degraded_ages
    assert set(a.shed_ages) | set(a.degraded_ages) == set(range(40))
    for age in a.degraded_ages:
        assert shed_fraction(42, age) < 0.5
    for age in a.shed_ages:
        assert shed_fraction(42, age) >= 0.5
    assert a.deadline_misses >= 40
    c = starved(7)
    assert c.shed_ages != a.shed_ages  # the seed is load-bearing


def test_metrics_gauges_and_latency_histogram():
    cfg = MJPEGConfig(width=32, height=32, frames=12)
    scfg = StreamConfig(fps=0, max_frames=12, lag_window=4)
    _, _, rep, result = run_live(cfg, scfg)
    snap = result.metrics.snapshot()
    assert "fields.live_bytes" in snap
    assert snap["process.peak_rss_bytes"]["value"] > 0
    lat = snap["stream.latency_ms"]
    assert lat["count"] == 12
    assert 0 < lat["p50"] <= lat["p99"] <= lat["max"]
    assert snap["stream.frames.offered"]["value"] == 12
    assert snap["stream.frames.completed"]["value"] == 12
    assert snap["stream.live_bytes.peak"]["value"] == rep.peak_live_bytes
    assert rep.latency_ms["p50"] == lat["p50"]


def test_report_is_json_ready():
    cfg = MJPEGConfig(width=32, height=32, frames=6)
    scfg = StreamConfig(fps=0, max_frames=6, lag_window=4)
    _, _, rep, _ = run_live(cfg, scfg)
    blob = json.loads(json.dumps(rep.as_dict()))
    assert blob["offered"] == 6
    assert blob["lag_window"] == 4
    assert "p99" in blob["latency_ms"]


def test_stream_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(fps=-1)
    with pytest.raises(ValueError):
        StreamConfig(lag_window=0)
    with pytest.raises(ValueError):
        StreamConfig(duration=0)
