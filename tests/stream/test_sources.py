"""Frame-source tests: the live synthetic camera matches the batch clip
frame for frame, and the file source loops its clip."""

import numpy as np
import pytest

from repro.media.yuv import synthetic_sequence, write_yuv_file
from repro.stream import FileLoopSource, SequenceSource, SyntheticSource


def take(source, n):
    out = []
    for frame in source.frames():
        out.append(frame)
        if len(out) == n:
            break
    return out


def test_synthetic_source_matches_batch_clip():
    batch = synthetic_sequence(10, 64, 48, seed=7)
    live = take(SyntheticSource(64, 48, seed=7), 10)
    for a, b in zip(batch, live):
        assert np.array_equal(a.y, b.y)
        assert np.array_equal(a.u, b.u)
        assert np.array_equal(a.v, b.v)


def test_synthetic_source_is_unbounded():
    src = SyntheticSource(16, 16)
    assert len(take(src, 100)) == 100


def test_file_loop_source_loops(tmp_path):
    clip = synthetic_sequence(3, 32, 32, seed=5)
    path = tmp_path / "clip.yuv"
    write_yuv_file(path, clip)
    src = FileLoopSource(path, 32, 32)
    assert src.clip_frames == 3
    frames = take(src, 7)  # 2 full loops + 1
    for i, f in enumerate(frames):
        ref = clip[i % 3]
        assert np.array_equal(f.y, ref.y)
        assert np.array_equal(f.u, ref.u)
        assert np.array_equal(f.v, ref.v)


def test_file_loop_source_rejects_truncated(tmp_path):
    path = tmp_path / "short.yuv"
    path.write_bytes(b"\x00" * 10)
    with pytest.raises(ValueError, match="no complete"):
        FileLoopSource(path, 32, 32)


def test_sequence_source_is_finite():
    src = SequenceSource([1, 2, 3])
    assert list(src.frames()) == [1, 2, 3]
