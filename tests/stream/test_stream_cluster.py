"""Live runs across the in-process cluster: frames travel the field
topics, backpressure credits return on the ``stream.credit`` control
topic, and the output is still byte-identical to the batch encoder."""

from repro.dist import Cluster
from repro.stream import StreamConfig
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline


def test_cluster_live_run_byte_identical():
    cfg = MJPEGConfig(width=32, height=32, frames=16)
    scfg = StreamConfig(fps=0, max_frames=16, lag_window=4)
    program, sink, binding = build_mjpeg_stream(cfg, scfg)
    cluster = Cluster(program, {"alpha": 2, "beta": 2})
    result = cluster.run(stream=binding)
    rep = result.stream
    assert rep.offered == rep.completed == 16
    assert rep.shed == 0 and rep.degraded == 0
    assert sink.stream() == mjpeg_baseline(config=cfg)
    # The source's injected frames crossed the transport to the nodes
    # that fetch the input fields.
    assert result.cross_node_messages() > 0
    # Memory stayed bounded by the window: retirement ran cluster-wide.
    assert rep.freed_bytes > 0
    assert rep.peak_live_bytes < rep.freed_bytes


def test_cluster_batch_path_unchanged():
    """No stream argument: the batch cluster path must be untouched by
    the streaming wiring (result.stream stays None)."""
    cfg = MJPEGConfig(width=32, height=32, frames=4)
    from repro.workloads import build_mjpeg

    program, sink = build_mjpeg(config=cfg)
    result = Cluster(program, {"alpha": 2, "beta": 2}).run()
    assert result.stream is None
    assert sink.frame_count() == 4
    assert sink.stream() == mjpeg_baseline(config=cfg)
