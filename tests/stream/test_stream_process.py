"""Live runs on the process backend: worker-side retirement of
shared-memory segments, byte-identity, and shm hygiene (no leaked
/dev/shm segments after a run — including retirement mid-run)."""

import glob

from repro.core import run_program
from repro.stream import StreamConfig
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline


def shm_segments() -> set[str]:
    # Segment names are f"p2g{run_id}_{field}_{age}" (core.fields).
    return set(glob.glob("/dev/shm/p2g*"))


def test_process_backend_live_run_clean_shm():
    before = shm_segments()
    cfg = MJPEGConfig(width=32, height=32, frames=30)
    scfg = StreamConfig(fps=0, max_frames=30, lag_window=4)
    program, sink, binding = build_mjpeg_stream(cfg, scfg)
    result = run_program(
        program, workers=2, backend="processes", stream=binding
    )
    rep = result.stream
    assert rep.completed == 30
    assert rep.freed_bytes > 0  # retirement ran mid-stream
    assert sink.stream() == mjpeg_baseline(config=cfg)
    # Every shared segment — retired mid-run or freed at teardown — is
    # gone: an unbounded live run cannot accumulate /dev/shm garbage.
    leaked = shm_segments() - before
    assert leaked == set()


def test_batch_process_run_clean_shm():
    """The shm-hygiene fix: a plain batch run on the process backend
    must unlink every segment at teardown (wind_down releases the
    store it owns), not rely on interpreter-exit finalizers."""
    before = shm_segments()
    from repro.workloads import build_mjpeg

    cfg = MJPEGConfig(width=32, height=32, frames=6)
    program, sink = build_mjpeg(config=cfg)
    run_program(program, workers=2, backend="processes")
    assert sink.frame_count() == 6
    assert shm_segments() - before == set()
