"""Retirer unit tests against stub fields/nodes: the safe floor tracks
both the completion frontier and the nodes' live minima, and sweeps
never double-free."""

from repro.stream import Retirer


class StubFields:
    def __init__(self) -> None:
        self.calls: list[int] = []

    def collect_below(self, age: int) -> int:
        self.calls.append(age)
        return 100  # pretend each sweep frees 100 bytes


class StubAnalyzer:
    def __init__(self) -> None:
        self.pending = None

    def min_pending_age(self, kernels=None):
        return self.pending


class StubReady:
    def __init__(self) -> None:
        self.queued = None

    def min_age(self, session=None):
        return self.queued


class StubBackend:
    def __init__(self) -> None:
        self.retired: list[int] = []

    def on_retire(self, min_age: int, fields=None) -> None:
        self.retired.append(min_age)


class StubNode:
    def __init__(self) -> None:
        self.analyzer = StubAnalyzer()
        self.ready = StubReady()
        self.backend = StubBackend()
        self._running_ages = {}


def make(max_back=0, keep_ages=0):
    fields, node = StubFields(), StubNode()
    r = Retirer(fields, [node], max_back=max_back, keep_ages=keep_ages)
    return r, fields, node


def test_frontier_advances_contiguously():
    r, _, _ = make()
    r.note_complete(0)
    r.note_complete(2)  # gap at 1
    assert r.completed_through() == 0
    r.note_complete(1)
    assert r.completed_through() == 2


def test_sweep_frees_below_frontier():
    r, fields, node = make()
    for age in range(5):
        r.note_complete(age)
    freed = r.sweep()
    assert freed == 100
    # frontier 4 -> floor 5: ages 0..4 freed
    assert fields.calls == [5]
    assert node.backend.retired == [5]
    assert r.retired_through == 5
    assert r.freed_bytes == 100


def test_keep_ages_and_max_back_lower_the_floor():
    r, fields, _ = make(max_back=2, keep_ages=1)
    for age in range(10):
        r.note_complete(age)
    r.sweep()
    assert fields.calls == [10 - 2 - 1]


def test_live_node_work_holds_back_retirement():
    r, fields, node = make()
    for age in range(8):
        r.note_complete(age)
    node.analyzer.pending = 3  # a pending fetch at age 3: floor <= 3
    r.sweep()
    assert fields.calls == [3]
    node.analyzer.pending = None
    node.ready.queued = 5
    r.sweep()
    assert fields.calls == [3, 5]
    node.ready.queued = None
    node._running_ages = {0: 6}
    r.sweep()
    assert fields.calls == [3, 5, 6]


def test_sweep_is_idempotent():
    r, fields, _ = make()
    for age in range(4):
        r.note_complete(age)
    assert r.sweep() == 100
    assert r.sweep() == 0  # nothing new below the floor
    assert fields.calls == [4]


def test_racing_probe_skips_sweep():
    class RacyNode(StubNode):
        def __init__(self) -> None:
            super().__init__()

            class Racy:
                def min_pending_age(self, kernels=None):
                    raise RuntimeError("dict changed size during iteration")

            self.analyzer = Racy()

    fields = StubFields()
    r = Retirer(fields, [RacyNode()])
    for age in range(4):
        r.note_complete(age)
    assert r.sweep() == 0
    assert fields.calls == []  # probe raced: sweep skipped, not forced
