"""ReadyQueue edge coverage: session-scoped ``min_age`` and fair-policy
heap behaviour when a session's heap is empty or a session stops
mid-run (its heap drains and the survivors keep dispatching)."""

from repro.core.kernels import KernelDef
from repro.core.runtime import KernelInstance, ReadyQueue


def inst(session, age, i=0):
    k = KernelDef(name=f"{session}.k", body=lambda ctx: None,
                  has_age=True, index_vars=("x",), domain={"x": 4})
    return KernelInstance(k, age=age, index=(i,))


class TestMinAgeSession:
    def test_unknown_session_is_none(self):
        q = ReadyQueue(scheduling="fair")
        q.push(inst("a", 3))
        assert q.min_age("ghost") is None

    def test_empty_queue_is_none(self):
        q = ReadyQueue(scheduling="fair")
        assert q.min_age() is None
        assert q.min_age("a") is None

    def test_scoped_bound_ignores_other_sessions(self):
        q = ReadyQueue(scheduling="fair")
        q.push(inst("a", 7))
        q.push(inst("b", 2))
        assert q.min_age("a") == 7
        assert q.min_age("b") == 2
        assert q.min_age() == 2  # unscoped: global minimum

    def test_bound_tracks_pops(self):
        q = ReadyQueue(scheduling="fair")
        for age in (4, 6):
            q.push(inst("a", age))
        q.push(inst("b", 1))
        popped = {q.pop_timed()[0].age for _ in range(2)}
        # one a-instance and the b-instance went (round-robin)
        assert popped == {4, 1}
        assert q.min_age("a") == 6
        assert q.min_age("b") is None

    def test_emptied_session_heap_returns_none_then_recovers(self):
        q = ReadyQueue(scheduling="fair")
        q.push(inst("a", 5))
        q.pop_timed()
        assert q.min_age("a") is None  # heap exists but is empty
        q.push(inst("a", 9))
        assert q.min_age("a") == 9


class TestFairEmptyHeaps:
    def test_round_robin_skips_empty_session(self):
        """A session whose heap drained must not stall the rotation."""
        q = ReadyQueue(scheduling="fair")
        q.push(inst("a", 0))
        q.pop_timed()  # session "a" heap now empty but still registered
        for age in range(3):
            q.push(inst("b", age))
        ages = [q.pop_timed()[0].age for _ in range(3)]
        assert ages == [0, 1, 2]

    def test_session_stopping_midrun_leaves_survivors_dispatchable(self):
        """A stopped session's drained heap lingers in the rotation;
        every remaining session still gets its turns, in age order."""
        q = ReadyQueue(scheduling="fair", session_weights={"gold": 2})
        for age in range(2):
            q.push(inst("stopper", age))
            q.push(inst("gold", age))
            q.push(inst("be", age))
        # "stopper" session ends mid-run: its queued work drains first.
        got = []
        while q.min_age("stopper") is not None:
            item, _ = q.pop_timed()
            got.append(item)
            # put back anything that wasn't the stopping session's
        survivors = [i for i in got
                     if not i.kernel.name.startswith("stopper.")]
        for item in survivors:
            q.push(item)
        remaining = [q.pop_timed()[0] for _ in range(4)]
        names = {i.kernel.name.split(".")[0] for i in remaining}
        assert names == {"gold", "be"}
        for session in ("gold", "be"):
            ages = [i.age for i in remaining
                    if i.kernel.name.startswith(session + ".")]
            assert ages == sorted(ages)  # age order per survivor
        assert len(q) == 0

    def test_sentinel_only_after_all_heaps_empty(self):
        q = ReadyQueue(scheduling="fair")
        q.push(inst("a", 0))
        q.push_sentinel()
        item, _ = q.pop_timed()
        assert item is not None  # work before shutdown marker
        assert q.pop_timed()[0] is None

    def test_drain_clears_every_session(self):
        q = ReadyQueue(scheduling="fair")
        q.push(inst("a", 1))
        q.push(inst("b", 2))
        q.push_sentinel()
        items = q.drain()
        assert len(items) == 2
        assert len(q) == 0
        assert q.min_age("a") is None and q.min_age("b") is None
