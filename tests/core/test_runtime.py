"""Unit and integration tests for the threaded execution node."""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    AgeExpr,
    Dim,
    ExecutionNode,
    FetchSpec,
    FieldDef,
    KernelBodyError,
    KernelDef,
    KernelInstance,
    Program,
    ReadyQueue,
    RuntimeStateError,
    StoreSpec,
    WorkCounter,
    run_program,
)
from repro.workloads import build_mulsum, expected_series


class TestReadyQueue:
    def _kernel(self):
        return KernelDef("k", lambda ctx: None, has_age=True)

    def test_age_priority(self):
        q = ReadyQueue()
        k = self._kernel()
        q.push(KernelInstance(k, 5))
        q.push(KernelInstance(k, 1))
        q.push(KernelInstance(k, 3))
        assert q.pop().age == 1
        assert q.pop().age == 3
        assert q.pop().age == 5

    def test_ageless_first(self):
        q = ReadyQueue()
        init = KernelDef("init", lambda ctx: None)
        k = self._kernel()
        q.push(KernelInstance(k, 0))
        q.push(KernelInstance(init, None))
        assert q.pop().age is None

    def test_fifo_within_age(self):
        q = ReadyQueue()
        k = KernelDef("k", lambda ctx: None, has_age=True,
                      index_vars=("x",), domain={"x": 10})
        for i in range(5):
            q.push(KernelInstance(k, 0, (i,)))
        assert [q.pop().index[0] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_fifo_policy_is_insertion_order(self):
        q = ReadyQueue("fifo")
        k = self._kernel()
        q.push(KernelInstance(k, 5))
        q.push(KernelInstance(k, 1))
        assert q.pop().age == 5
        assert q.pop().age == 1

    def test_lifo_policy_is_newest_first(self):
        q = ReadyQueue("lifo")
        k = self._kernel()
        q.push(KernelInstance(k, 1))
        q.push(KernelInstance(k, 5))
        assert q.pop().age == 5
        assert q.pop().age == 1

    def test_unknown_policy_rejected(self):
        import pytest as _pytest

        from repro.core import RuntimeStateError as _RSE

        with _pytest.raises(_RSE):
            ReadyQueue("random")

    def test_sentinel_wakes(self):
        q = ReadyQueue()
        got = []

        def worker():
            got.append(q.pop())

        t = threading.Thread(target=worker)
        t.start()
        q.push_sentinel()
        t.join(2)
        assert got == [None]

    def test_min_age_and_len(self):
        q = ReadyQueue()
        k = self._kernel()
        assert q.min_age() is None
        q.push(KernelInstance(k, 4))
        q.push(KernelInstance(k, 2))
        assert q.min_age() == 2
        assert len(q) == 2


class TestWorkCounter:
    def test_zero_is_idle(self):
        c = WorkCounter()
        assert c.wait(0.01) == "idle"

    def test_inc_dec(self):
        c = WorkCounter()
        c.inc(3)
        assert c.wait(0.05) == "timeout"
        c.dec(3)
        assert c.wait(0.5) == "idle"

    def test_poke(self):
        c = WorkCounter()
        c.inc()
        results = []
        t = threading.Thread(target=lambda: results.append(c.wait(5)))
        t.start()
        time.sleep(0.02)
        c.poke()
        t.join(2)
        assert results == ["poked"]


class TestExecutionNode:
    def test_mulsum_exact_values(self):
        program, sink = build_mulsum()
        result = run_program(program, workers=4, max_age=4, timeout=60)
        assert result.reason == "idle"
        expected = expected_series(5)
        for age, (m, p) in expected.items():
            assert np.array_equal(sink[age][0], m)
            assert np.array_equal(sink[age][1], p)

    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_deterministic_across_worker_counts(self, workers):
        program, sink = build_mulsum()
        run_program(program, workers=workers, max_age=2, timeout=60)
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])

    def test_instance_counts(self):
        program, _ = build_mulsum()
        result = run_program(program, workers=2, max_age=3, timeout=60)
        stats = result.stats
        assert stats["init"].instances == 1
        assert stats["mul2"].instances == 4 * 5
        assert stats["plus5"].instances == 4 * 5
        assert stats["print"].instances == 4

    def test_run_twice_rejected(self):
        program, _ = build_mulsum()
        node = ExecutionNode(program, 1, max_age=0)
        node.run(timeout=30)
        with pytest.raises(RuntimeStateError):
            node.run()

    def test_join_before_start_rejected(self):
        program, _ = build_mulsum()
        node = ExecutionNode(program, 1, max_age=0)
        with pytest.raises(RuntimeStateError):
            node.join()

    def test_zero_workers_rejected(self):
        program, _ = build_mulsum()
        with pytest.raises(RuntimeStateError):
            ExecutionNode(program, 0)

    def test_kernel_error_propagates(self):
        def bad(ctx):
            raise ValueError("boom")

        prog = Program.build(
            [FieldDef("f")],
            [KernelDef("bad", bad, stores=(StoreSpec("f", AgeExpr.const(0)),))],
        )
        with pytest.raises(KernelBodyError) as err:
            run_program(prog, workers=2, timeout=30)
        assert err.value.kernel == "bad"
        assert isinstance(err.value.cause, ValueError)

    def test_stop_midway(self):
        # unbounded cyclic program (modulo keeps int64 exact forever)
        program, _ = build_mulsum(modulo=2**40)
        node = ExecutionNode(program, 2)
        node.start()
        time.sleep(0.05)
        node.stop()
        result = node.join(timeout=10)
        assert result.reason == "stopped"

    def test_timeout(self):
        program, _ = build_mulsum(modulo=2**40)  # runs forever
        node = ExecutionNode(program, 1)
        result = node.run(timeout=0.2)
        assert result.reason == "timeout"

    def test_empty_program_is_idle(self):
        prog = Program.build([FieldDef("f")], [])
        result = run_program(prog, workers=1, timeout=10)
        assert result.reason == "idle"

    def test_gc_frees_old_ages(self):
        program, _ = build_mulsum(modulo=2**40)
        result = run_program(
            program, workers=2, max_age=30, timeout=120,
            gc_fields=True, keep_ages=1,
        )
        assert result.reason == "idle"
        assert result.gc_bytes > 0
        # late ages must survive GC
        assert result.fields["m_data"].is_complete(30)

    def test_gc_does_not_change_results(self):
        program, sink = build_mulsum()
        run_program(program, workers=4, max_age=10, timeout=120,
                    gc_fields=True, keep_ages=2)
        expected = expected_series(11)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])

    def test_inject_external_event(self):
        """The distributed layer injects store events produced elsewhere;
        the local analyzer must react to them."""
        seen = []

        def sink_body(ctx):
            seen.append(ctx.age)

        sink = KernelDef(
            "sink", sink_body, has_age=True,
            fetches=(FetchSpec("v", "f"),),
        )
        prog = Program.build([FieldDef("f")], [sink])
        node = ExecutionNode(prog, 1)
        # store performed "remotely" against the shared field store
        from repro.core.events import StoreEvent

        node.fields["f"].store(0, slice(0, 2), [1, 2])
        node.start()
        node.inject(StoreEvent("f", 0, (slice(0, 2),)))
        result = node.join(timeout=10)
        assert result.reason == "idle"
        assert seen == [0]

    def test_on_event_tap_sees_stores(self):
        events = []
        program, _ = build_mulsum()
        node = ExecutionNode(
            program, 2, max_age=1,
            on_event=lambda n, ev: events.append(type(ev).__name__),
        )
        node.run(timeout=30)
        assert "StoreEvent" in events

    def test_instrumentation_populated(self):
        program, _ = build_mulsum()
        result = run_program(program, workers=2, max_age=2, timeout=60)
        stats = result.stats
        assert stats["mul2"].kernel_time >= 0
        assert stats["mul2"].mean_dispatch_us > 0
        assert result.instrumentation.analyzer_time > 0
        assert result.instrumentation.wall_time > 0
        assert result.ready_high_water >= 1


class TestStallWatchdog:
    """Regression: a node that stops draining work used to hang the
    quiescence wait forever; ``stall_timeout`` must turn that into a
    :class:`StallError` instead."""

    def _stuck_program(self, release: threading.Event):
        def stuck(ctx):
            release.wait()  # a kernel body that never returns on its own

        return Program.build(
            [FieldDef("f", "int64", 1)],
            [KernelDef("stuck", stuck,
                       stores=(StoreSpec("f", AgeExpr.const(0), key="f"),))],
        )

    def test_stalled_run_raises_instead_of_hanging(self):
        from repro.core import StallError

        release = threading.Event()
        program = self._stuck_program(release)
        t0 = time.monotonic()
        try:
            with pytest.raises(StallError) as exc_info:
                run_program(program, workers=1, stall_timeout=0.2, timeout=60)
            assert exc_info.value.outstanding >= 1
            # the watchdog fired, not the overall timeout
            assert time.monotonic() - t0 < 30
        finally:
            release.set()  # unstick the abandoned daemon worker

    def test_progressing_run_is_not_killed_by_watchdog(self):
        """Steady progress slower than nothing-at-all must never trip the
        stall watchdog, only genuine inactivity."""
        program, sink = build_mulsum()
        result = run_program(program, workers=2, max_age=3,
                             stall_timeout=5.0, timeout=60)
        assert result.reason == "idle"
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][1], expected[age][1])


class TestWindDown:
    def test_wind_down_reports_abandoned_and_keeps_counter_clean(self):
        """Fencing a mid-flight node must return its unfinished work and
        leave the shared counter balanced (no leaked tokens)."""
        started = threading.Event()
        release = threading.Event()

        def first(ctx):
            started.set()
            release.wait()

        program = Program.build(
            [FieldDef("f", "int64", 1)],
            [KernelDef("stuck", first,
                       stores=(StoreSpec("f", AgeExpr.const(0), key="f"),))],
        )
        counter = WorkCounter()
        node = ExecutionNode(program, 1, counter=counter)
        counter.inc()  # startup token, as the cluster layer holds it
        node.start()
        assert started.wait(5)
        release.set()
        node.wind_down()
        counter.dec()
        assert counter.value() == 0

    def test_inject_after_wind_down_is_ignored(self):
        from repro.core import StoreEvent

        program, _ = build_mulsum()
        counter = WorkCounter()
        node = ExecutionNode(program, 1, max_age=0, counter=counter)
        counter.inc()
        node.start()
        node.wind_down()
        counter.dec()
        before = counter.value()
        node.inject(StoreEvent("m_data", 0, (slice(0, 5),)))
        assert counter.value() == before
