"""Unit tests for the instrumentation collector."""

import pytest

from repro.core import Instrumentation, KernelStats


class TestKernelStats:
    def test_means(self):
        s = KernelStats(instances=4, dispatch_time=8e-6, kernel_time=40e-6)
        assert s.mean_dispatch_us == pytest.approx(2.0)
        assert s.mean_kernel_us == pytest.approx(10.0)

    def test_empty_means_are_zero(self):
        s = KernelStats()
        assert s.mean_dispatch_us == 0.0
        assert s.mean_kernel_us == 0.0
        assert s.dispatch_ratio == 0.0

    def test_dispatch_ratio(self):
        s = KernelStats(instances=1, dispatch_time=3.0, kernel_time=1.0)
        assert s.dispatch_ratio == pytest.approx(0.75)

    def test_merged(self):
        a = KernelStats(2, 1.0, 2.0)
        b = KernelStats(3, 0.5, 1.0)
        m = a.merged(b)
        assert m.instances == 5
        assert m.dispatch_time == 1.5
        assert m.kernel_time == 3.0


class TestInstrumentation:
    def test_record_accumulates(self):
        instr = Instrumentation()
        instr.record("k", 1e-6, 2e-6)
        instr.record("k", 1e-6, 2e-6)
        s = instr["k"]
        assert s.instances == 2
        assert s.kernel_time == pytest.approx(4e-6)

    def test_unknown_kernel_is_empty(self):
        assert Instrumentation()["nope"].instances == 0

    def test_totals(self):
        instr = Instrumentation()
        instr.record("a", 0, 1.0)
        instr.record("b", 0, 2.0)
        assert instr.total_instances() == 2
        assert instr.total_kernel_time() == pytest.approx(3.0)

    def test_merged(self):
        a = Instrumentation()
        a.record("x", 1.0, 1.0)
        a.add_analyzer_time(0.5)
        b = Instrumentation()
        b.record("x", 1.0, 1.0)
        b.record("y", 0.0, 2.0)
        m = a.merged(b)
        assert m["x"].instances == 2
        assert m["y"].instances == 1
        assert m.analyzer_time == 0.5

    def test_table_layout(self):
        instr = Instrumentation()
        instr.record("init", 69e-6, 18e-6)
        text = instr.table(order=["init"], title="Table II")
        assert "Table II" in text
        assert "init" in text
        assert "69.00 us" in text
        assert "18.00 us" in text

    def test_table_includes_missing_kernels_as_zero(self):
        text = Instrumentation().table(order=["ghost"])
        assert "ghost" in text

    def test_as_rows(self):
        instr = Instrumentation()
        instr.record("a", 2e-6, 4e-6)
        rows = instr.as_rows(order=["a"])
        assert rows == [
            ("a", 1, pytest.approx(2.0), pytest.approx(4.0), 0.0)
        ]

    def test_as_rows_reports_mean_ipc(self):
        instr = Instrumentation()
        instr.record("a", 2e-6, 4e-6, ipc_time=6e-6)
        instr.record("a", 2e-6, 4e-6, ipc_time=2e-6)
        (_, n, _, _, ipc), = instr.as_rows(order=["a"])
        assert n == 2
        assert ipc == pytest.approx(4.0)  # mean of 6 us and 2 us

    def test_merged_is_thread_safe_against_concurrent_recording(self):
        """Merging while both operands are being hammered from other
        threads must neither crash nor produce an inconsistent row
        (instances and times are snapshotted under the same lock)."""
        import threading

        a, b = Instrumentation(), Instrumentation()
        stop = threading.Event()

        def hammer(instr):
            while not stop.is_set():
                instr.record("k", 1e-6, 2e-6, ipc_time=3e-6)
                instr.add_analyzer_time(1e-6)
                instr.record_failure(1, 1e-3, replayed=2)

        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in (a, b)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                m = a.merged(b)
                s = m["k"]
                # Per-instance means must stay exact: every recorded
                # instance carried the same (dispatch, kernel, ipc).
                if s.instances:
                    assert s.mean_dispatch_us == pytest.approx(1.0)
                    assert s.mean_kernel_us == pytest.approx(2.0)
                    assert s.mean_ipc_us == pytest.approx(3.0)
                assert m.replayed_events == 2 * m.node_failures
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_start_stop_wall_time(self):
        instr = Instrumentation()
        instr.start()
        instr.stop()
        assert instr.wall_time >= 0.0

    def test_snapshot_is_copy(self):
        instr = Instrumentation()
        instr.record("a", 1.0, 1.0)
        snap = instr.stats()
        snap["a"].instances = 99
        assert instr["a"].instances == 1
