"""Tests for stencil (offset) fetches — clamped neighbour access."""

import numpy as np
import pytest

from repro.core import (
    AgeExpr,
    DefinitionError,
    Dim,
    FetchSpec,
    FieldDef,
    KernelDef,
    Program,
    SchedulerError,
    StoreSpec,
    coarsen,
    run_program,
)


class TestDimOffset:
    def test_region_shifts(self):
        d = Dim.of("x", offset=1)
        assert d.region(2, 10) == slice(3, 4)

    def test_negative_offset_clamps_at_zero(self):
        d = Dim.of("x", offset=-1)
        assert d.region(0, 10) == slice(0, 1)  # edge replication
        assert d.region(3, 10) == slice(2, 3)

    def test_positive_offset_clamps_at_extent(self):
        d = Dim.of("x", offset=1)
        assert d.region(9, 10) == slice(9, 10)

    def test_count_unchanged_by_offset(self):
        assert Dim.of("x", offset=-2).count(10) == 10

    def test_block_with_offset(self):
        d = Dim.of("x", block=4, offset=-1)
        assert d.region(1, 16) == slice(3, 7)
        assert d.region(0, 16) == slice(0, 4)  # clamped, full width

    def test_candidates_cover_shifted_consumers(self):
        d = Dim.of("x", offset=-1)
        # a store of element 5 can satisfy the x=6 instance (fetch [x-1])
        assert 6 in d.candidates(slice(5, 6), 10)

    def test_str(self):
        assert str(Dim.of("x", offset=-1)) == "x-1"
        assert str(Dim.of("x", block=8, offset=2)) == "x+2:8"


class TestStencilValidation:
    def test_store_offset_rejected(self):
        with pytest.raises(DefinitionError, match="fetch-only"):
            KernelDef(
                "k", lambda ctx: None, has_age=True, index_vars=("x",),
                fetches=(FetchSpec("v", "f", dims=(Dim.of("x"),),
                                   scalar=True),),
                stores=(StoreSpec("g", dims=(Dim.of("x", offset=1),)),),
            )

    def test_coarsen_rejects_stencil_var(self):
        prog = build_blur_program(8, 1)
        with pytest.raises(SchedulerError, match="stencil"):
            coarsen(prog, "blur", "x", 2)


def build_blur_program(n: int, ages: int):
    """1-d [1 2 1]/4 blur iterated over ages via stencil fetches."""
    signal0 = np.zeros(n, dtype=np.int64)
    signal0[n // 2] = 1024  # impulse

    def seed_body(ctx):
        ctx.emit("signal", signal0)

    def blur_body(ctx):
        ctx.emit(
            "out",
            (ctx["left"] + 2 * ctx["mid"] + ctx["right"]) // 4,
        )

    return Program.build(
        fields=[FieldDef("signal", "int64", 1, shape=(n,))],
        kernels=[
            KernelDef("seed", seed_body,
                      stores=(StoreSpec("signal", AgeExpr.const(0)),)),
            KernelDef(
                "blur", blur_body, has_age=True, index_vars=("x",),
                fetches=(
                    FetchSpec("left", "signal",
                              dims=(Dim.of("x", offset=-1),), scalar=True),
                    FetchSpec("mid", "signal",
                              dims=(Dim.of("x"),), scalar=True),
                    FetchSpec("right", "signal",
                              dims=(Dim.of("x", offset=1),), scalar=True),
                ),
                stores=(StoreSpec("signal", AgeExpr.var(1),
                                  dims=(Dim.of("x"),), key="out"),),
                age_limit=ages - 1,
            ),
        ],
        name="blur",
    )


def reference_blur(n: int, ages: int) -> np.ndarray:
    v = np.zeros(n, dtype=np.int64)
    v[n // 2] = 1024
    for _ in range(ages):
        padded = np.concatenate([[v[0]], v, [v[-1]]])  # edge clamp
        v = (padded[:-2] + 2 * padded[1:-1] + padded[2:]) // 4
    return v


class TestStencilExecution:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_blur_matches_reference(self, workers):
        n, ages = 16, 5
        program = build_blur_program(n, ages)
        result = run_program(program, workers=workers, timeout=60)
        assert result.reason == "idle"
        got = result.fields["signal"].fetch(ages)
        assert np.array_equal(got, reference_blur(n, ages))

    def test_instance_counts(self):
        n, ages = 12, 3
        program = build_blur_program(n, ages)
        result = run_program(program, workers=2, timeout=60)
        assert result.stats["blur"].instances == n * ages

    def test_mass_preserved_odd_boundaries(self):
        """Edge clamping conserves nothing exactly, but the impulse must
        spread symmetrically while centred."""
        n, ages = 32, 4
        program = build_blur_program(n, ages)
        result = run_program(program, workers=3, timeout=60)
        v = result.fields["signal"].fetch(ages)
        centre = n // 2
        for k in range(1, ages + 1):
            assert v[centre - k] == v[centre + k]  # symmetric spread
        assert v[centre] == v.max()
