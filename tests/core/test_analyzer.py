"""Unit tests for the dependency analyzer (event → instance logic)."""

import numpy as np
import pytest

from repro.core import (
    AgeExpr,
    DependencyAnalyzer,
    Dim,
    FetchSpec,
    FieldDef,
    FieldStore,
    KernelDef,
    Program,
    StoreSpec,
)
from repro.core.events import InstanceDoneEvent, ResizeEvent, StoreEvent
from repro.core.fields import normalize_index
from repro.core.kernels import KernelInstance


def nop(ctx):
    pass


def store_ev(fields, name, age, index, value):
    """Perform a store and return the matching event (as a worker would)."""
    field = fields[name]
    idx = normalize_index(index, field.ndim)
    resize = field.store(age, idx, value)
    return StoreEvent(name, age, idx), resize


def simple_program():
    """init -> per-element consumer -> whole-field sink."""
    init = KernelDef("init", nop, stores=(StoreSpec("a", AgeExpr.const(0)),))
    per = KernelDef(
        "per", nop, has_age=True, index_vars=("x",),
        fetches=(FetchSpec("v", "a", dims=(Dim.of("x"),), scalar=True),),
        stores=(StoreSpec("b", dims=(Dim.of("x"),)),),
    )
    sink = KernelDef(
        "sink", nop, has_age=True, fetches=(FetchSpec("all", "b"),),
    )
    return Program.build(
        [FieldDef("a"), FieldDef("b")], [init, per, sink]
    )


class TestInitialInstances:
    def test_run_once_and_aged_sources(self):
        src = KernelDef("src", nop, has_age=True,
                        stores=(StoreSpec("a"),))
        init = KernelDef("init", nop, stores=(StoreSpec("b", AgeExpr.const(0)),))
        prog = Program.build([FieldDef("a"), FieldDef("b")], [init, src])
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        initial = an.initial_instances()
        got = {(i.kernel.name, i.age) for i in initial}
        assert got == {("init", None), ("src", 0)}

    def test_initial_respects_domain(self):
        src = KernelDef("src", nop, has_age=True, index_vars=("x",),
                        domain={"x": 3}, stores=(StoreSpec("a", dims=(Dim.of("x"),)),))
        prog = Program.build([FieldDef("a")], [src])
        an = DependencyAnalyzer(prog, FieldStore(prog.fields.values()))
        assert len(an.initial_instances()) == 3

    def test_initial_only_once(self):
        prog = simple_program()
        an = DependencyAnalyzer(prog, FieldStore(prog.fields.values()))
        first = an.initial_instances()
        assert len(first) == 1
        assert an.initial_instances() == []


class TestOnStore:
    def test_per_element_dispatch(self):
        prog = simple_program()
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        an.initial_instances()
        ev, _ = store_ev(fields, "a", 0, slice(0, 3), [1, 2, 3])
        out = an.on_store(ev)
        names = sorted(str(i) for i in out)
        assert names == ["per(age=0, x=0)", "per(age=0, x=1)",
                         "per(age=0, x=2)"]

    def test_dispatch_once(self):
        prog = simple_program()
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev, _ = store_ev(fields, "a", 0, 0, 5)
        assert len(an.on_store(ev)) == 1
        assert an.on_store(ev) == []  # same event again: nothing new

    def test_whole_field_fetch_waits_for_completion(self):
        """With a declared shape, a whole-field fetch is exact: it only
        dispatches when every element is written."""
        init = KernelDef("init", nop, stores=(StoreSpec("a", AgeExpr.const(0)),))
        sink = KernelDef(
            "sink", nop, has_age=True, fetches=(FetchSpec("all", "b"),),
        )
        prog = Program.build(
            [FieldDef("a"), FieldDef("b", shape=(2,))], [init, sink]
        )
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev1, _ = store_ev(fields, "b", 0, 0, 2)
        assert an.on_store(ev1) == []  # element 1 still missing
        ev2, _ = store_ev(fields, "b", 0, 1, 4)
        out = an.on_store(ev2)
        assert [i.kernel.name for i in out] == ["sink"]

    def test_whole_field_fetch_on_growing_field(self):
        """Without a declared shape, 'the whole field' is the extent at
        dispatch time — the documented implicit-resize semantics (the
        paper dispatches once per instance; resizes add *new* instances,
        they do not re-dispatch old ones)."""
        prog = simple_program()
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev1, _ = store_ev(fields, "b", 0, 0, 2)
        out = an.on_store(ev1)
        assert [i.kernel.name for i in out] == ["sink"]
        # later growth does not re-dispatch the sink for age 0
        ev2, _ = store_ev(fields, "b", 0, 1, 4)
        assert an.on_store(ev2) == []

    def test_age_offset_solve(self):
        loop = KernelDef(
            "loop", nop, has_age=True, index_vars=("x",),
            fetches=(FetchSpec("v", "a", AgeExpr.var(0),
                               dims=(Dim.of("x"),), scalar=True),),
            stores=(StoreSpec("a", AgeExpr.var(1), dims=(Dim.of("x"),)),),
        )
        prog = Program.build([FieldDef("a")], [loop])
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev, _ = store_ev(fields, "a", 3, 0, 1)
        out = an.on_store(ev)
        assert [(i.kernel.name, i.age) for i in out] == [("loop", 3)]

    def test_literal_age_fetch_rechecks_pending(self):
        """A kernel fetching config(0) + stream(a): config arriving last
        must release the pending ages."""
        k = KernelDef(
            "k", nop, has_age=True, index_vars=("x",),
            fetches=(
                FetchSpec("s", "stream", dims=(Dim.of("x"),), scalar=True),
                FetchSpec("c", "config", AgeExpr.const(0)),
            ),
        )
        prog = Program.build(
            [FieldDef("stream"), FieldDef("config")], [k]
        )
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev, _ = store_ev(fields, "stream", 2, 0, 1)
        assert an.on_store(ev) == []  # config missing
        ev2, _ = store_ev(fields, "config", 0, 0, 9)
        out = an.on_store(ev2)
        assert [(i.kernel.name, i.age, i.index) for i in out] == [("k", 2, (0,))]

    def test_max_age_bound(self):
        prog = simple_program()
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields, max_age=1)
        ev, _ = store_ev(fields, "a", 5, 0, 1)
        assert an.on_store(ev) == []

    def test_per_kernel_age_limit(self):
        per = KernelDef(
            "per", nop, has_age=True, index_vars=("x",),
            fetches=(FetchSpec("v", "a", dims=(Dim.of("x"),), scalar=True),),
            age_limit=2,
        )
        prog = Program.build([FieldDef("a")], [per])
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev, _ = store_ev(fields, "a", 2, 0, 1)
        assert len(an.on_store(ev)) == 1
        ev2, _ = store_ev(fields, "a", 3, 0, 1)
        assert an.on_store(ev2) == []

    def test_multi_var_combinations(self):
        pair = KernelDef(
            "pair", nop, has_age=True, index_vars=("x", "y"),
            fetches=(
                FetchSpec("a", "fa", dims=(Dim.of("x"),), scalar=True),
                FetchSpec("b", "fb", dims=(Dim.of("y"),), scalar=True),
            ),
        )
        prog = Program.build([FieldDef("fa"), FieldDef("fb")], [pair])
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev, _ = store_ev(fields, "fa", 0, slice(0, 2), [1, 2])
        assert an.on_store(ev) == []  # fb empty
        ev2, _ = store_ev(fields, "fb", 0, slice(0, 3), [1, 2, 3])
        out = an.on_store(ev2)
        assert len(out) == 6  # 2 x 3 combinations

    def test_block_fetch_candidates(self):
        blocky = KernelDef(
            "blocky", nop, has_age=True, index_vars=("x",),
            fetches=(FetchSpec("v", "a", dims=(Dim.of("x", 4),)),),
        )
        prog = Program.build([FieldDef("a")], [blocky])
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev, _ = store_ev(fields, "a", 0, slice(0, 8), np.arange(8))
        out = an.on_store(ev)
        assert sorted(i.index for i in out) == [(0,), (1,)]


class TestSourceAdvance:
    def test_source_chain_advances_until_silent(self):
        src = KernelDef("src", nop, has_age=True, stores=(StoreSpec("a"),))
        prog = Program.build([FieldDef("a")], [src])
        an = DependencyAnalyzer(prog, FieldStore(prog.fields.values()))
        (first,) = an.initial_instances()
        nxt = an.on_done(InstanceDoneEvent(first, stored_any=True))
        assert [(i.kernel.name, i.age) for i in nxt] == [("src", 1)]
        done = an.on_done(InstanceDoneEvent(nxt[0], stored_any=False))
        assert done == []

    def test_non_source_done_is_ignored(self):
        prog = simple_program()
        an = DependencyAnalyzer(prog, FieldStore(prog.fields.values()))
        per = prog.kernels["per"]
        ev = InstanceDoneEvent(KernelInstance(per, 0, (0,)), stored_any=True)
        assert an.on_done(ev) == []


class TestResize:
    def test_resize_dispatches_new_combos(self):
        prog = simple_program()
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        ev, _ = store_ev(fields, "a", 0, slice(0, 2), [1, 2])
        assert len(an.on_store(ev)) == 2
        # growth: element 5 written later (extent 0..5); elements 2..4
        # missing, so only x=5 becomes dispatchable
        ev2, resize = store_ev(fields, "a", 0, 5, 9)
        assert resize is not None
        out = an.on_store(ev2)
        assert sorted(i.index for i in out) == [(5,)]
        out2 = an.on_resize(
            ResizeEvent("a", resize.old_extent, resize.new_extent)
        )
        assert out2 == []  # nothing new; gap still unwritten

    def test_counters(self):
        prog = simple_program()
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        an.initial_instances()
        ev, _ = store_ev(fields, "a", 0, slice(0, 4), [1, 2, 3, 4])
        an.on_store(ev)
        assert an.dispatched_count("per") == 4
        assert an.dispatched_count() == 5  # + init
        assert an.events_processed == 1


class TestProducerCoverage:
    """Whole-field fetches must wait out the producer's full index
    domain, not fire at a momentarily-consistent partial extent."""

    def events_for(self, an, fields, name, age, index, value):
        ev, resize = store_ev(fields, name, age, index, value)
        out = []
        if resize is not None:
            out += an.on_resize(
                ResizeEvent(name, resize.old_extent, resize.new_extent)
            )
        out += an.on_store(ev)
        return out

    def test_whole_field_fetch_waits_for_producer_domain(self):
        prog = simple_program()
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(prog, fields)
        # init commits a(0) atomically: per x=0..4 become runnable.
        assert len(self.events_for(an, fields, "a", 0, slice(0, 5),
                                   [1, 2, 3, 4, 5])) == 5
        # First per instance stores b[0] only: extent (1,), store_count 1
        # — "complete" at the partial extent, but per's domain (from a's
        # extent) promises five elements, so sink must not fire yet.
        out = self.events_for(an, fields, "b", 0, 0, 10)
        assert all(i.kernel.name != "sink" for i in out)
        # The remaining stores complete the true domain: sink(0) fires
        # exactly once.
        for x in range(1, 5):
            out += self.events_for(an, fields, "b", 0, x, 10 + x)
        assert [(i.kernel.name, i.age) for i in out].count(("sink", 0)) == 1

    def test_partitioned_analyzer_knows_remote_producers(self):
        """A node hosting only the consumer is told the full program's
        kernels (the cluster layer's ``dependency_kernels``) and applies
        the same guard to a field written remotely."""
        prog = simple_program()
        sink_only = Program.build(
            prog.fields.values(), [prog.kernels["sink"]]
        )
        fields = FieldStore(prog.fields.values())
        an = DependencyAnalyzer(
            sink_only, fields, producers=prog.kernels.values()
        )
        store_ev(fields, "a", 0, slice(0, 5), [1, 2, 3, 4, 5])
        out = self.events_for(an, fields, "b", 0, 0, 10)
        assert out == []
        for x in range(1, 5):
            out += self.events_for(an, fields, "b", 0, x, 10 + x)
        assert [(i.kernel.name, i.age) for i in out] == [("sink", 0)]
