"""Unit tests for events and the publish-subscribe bus."""

from repro.core import EventBus, InstanceDoneEvent, KernelDef, StoreEvent
from repro.core.kernels import KernelInstance


class TestEventBus:
    def test_publish_subscribe(self):
        bus = EventBus()
        got = []
        bus.subscribe("t", lambda topic, p: got.append((topic, p)))
        n = bus.publish("t", 42)
        assert n == 1
        assert got == [("t", 42)]

    def test_no_subscribers(self):
        assert EventBus().publish("t", 1) == 0

    def test_wildcard(self):
        bus = EventBus()
        got = []
        bus.subscribe("*", lambda t, p: got.append(t))
        bus.publish("a", 1)
        bus.publish("b", 2)
        assert got == ["a", "b"]

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        unsub = bus.subscribe("t", lambda t, p: got.append(p))
        bus.publish("t", 1)
        unsub()
        bus.publish("t", 2)
        assert got == [1]
        unsub()  # idempotent

    def test_multiple_handlers_ordered(self):
        bus = EventBus()
        got = []
        bus.subscribe("t", lambda t, p: got.append("first"))
        bus.subscribe("t", lambda t, p: got.append("second"))
        bus.publish("t", None)
        assert got == ["first", "second"]

    def test_topics(self):
        bus = EventBus()
        unsub = bus.subscribe("x", lambda t, p: None)
        bus.subscribe("y", lambda t, p: None)
        assert bus.topics() == ["x", "y"]
        unsub()
        assert bus.topics() == ["y"]


class TestEventRecords:
    def test_store_event_is_frozen(self):
        ev = StoreEvent("f", 0, (slice(0, 1),))
        assert ev.field == "f"
        assert ev == StoreEvent("f", 0, (slice(0, 1),))
        # frozen dataclass: attributes immutable
        try:
            ev.age = 5
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated

    def test_done_event_defaults(self):
        k = KernelDef("k", lambda ctx: None)
        ev = InstanceDoneEvent(KernelInstance(k), stored_any=False)
        assert ev.kernel_time == 0.0
        assert not ev.stored_any


class TestWorkToken:
    """The shared quiescence-token helper behind the recovery fence,
    the replan swap and the stream-driver lifetime."""

    def _counter(self):
        from repro.core import WorkCounter

        return WorkCounter()

    def test_acquire_on_construction(self):
        from repro.core import WorkToken

        c = self._counter()
        tok = WorkToken(c, label="t")
        assert tok.held
        assert c.value() == 1

    def test_release_is_idempotent(self):
        from repro.core import WorkToken

        c = self._counter()
        tok = WorkToken(c)
        assert tok.release() is True
        assert c.value() == 0
        assert not tok.held
        # double release must not drive the counter negative
        assert tok.release() is False
        assert c.value() == 0

    def test_context_manager(self):
        from repro.core import WorkToken

        c = self._counter()
        with WorkToken(c, label="ctx") as tok:
            assert c.value() == 1
            assert tok.held
        assert c.value() == 0
        assert not tok.held

    def test_release_inside_context_is_safe(self):
        from repro.core import WorkToken

        c = self._counter()
        with WorkToken(c) as tok:
            tok.release()
        assert c.value() == 0

    def test_token_blocks_quiescence(self):
        import threading

        from repro.core import WorkToken

        c = self._counter()
        tok = WorkToken(c)
        done = threading.Event()
        out = []

        def waiter():
            out.append(c.wait(timeout=5))
            done.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        assert not done.wait(0.05)  # held token pins the run
        tok.release()
        assert done.wait(5)
        assert out == ["idle"]

    def test_concurrent_release_decrements_once(self):
        import threading

        from repro.core import WorkToken

        c = self._counter()
        c.inc()  # guard: counter must end at exactly 1
        tok = WorkToken(c)
        barrier = threading.Barrier(4)

        def racer():
            barrier.wait()
            tok.release()

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 1
