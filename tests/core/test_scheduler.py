"""Unit tests for the LLS transformations (coarsen / fuse / adaptive)."""

import numpy as np
import pytest

from repro.core import (
    AdaptivePolicy,
    FusionDecision,
    GranularityDecision,
    Instrumentation,
    SchedulerError,
    coarsen,
    coarsenable_vars,
    fusable_pairs,
    fuse,
    run_program,
)
from repro.workloads import build_kmeans, build_mulsum, expected_series


def run_sink(program, max_age=2, workers=2):
    return run_program(program, workers=workers, max_age=max_age, timeout=60)


class TestCoarsen:
    def test_reduces_instances_preserves_values(self):
        program, sink = build_mulsum()
        coarse = coarsen(program, "mul2", "x", 5)
        result = run_sink(coarse)
        assert result.stats["mul2"].instances == 3  # one per age
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_partial_factor(self):
        program, sink = build_mulsum()
        coarse = coarsen(program, "mul2", "x", 2)  # blocks of 2 over 5
        result = run_sink(coarse, max_age=1)
        assert result.stats["mul2"].instances == 2 * 3  # ceil(5/2) per age
        expected = expected_series(2)
        for age in expected:
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_factor_one_is_identity(self):
        program, _ = build_mulsum()
        assert coarsen(program, "mul2", "x", 1) is program

    def test_unknown_kernel(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            coarsen(program, "nope", "x", 2)

    def test_unknown_var(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            coarsen(program, "mul2", "y", 2)

    def test_invalid_factor(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            coarsen(program, "mul2", "x", 0)

    def test_coarsen_2d_kernel(self):
        """K-means' pair assign has two index vars; coarsening x batches
        points while c stays per-centroid."""
        program, sink = build_kmeans(
            n=40, k=4, iterations=2, granularity="pair"
        )
        coarse = coarsen(program, "assign", "x", 8)
        result = run_program(coarse, workers=2, timeout=60)
        # ceil(40/8)=5 x-blocks * 4 centroids * 2 iterations
        assert result.stats["assign"].instances == 5 * 4 * 2
        from repro.workloads import kmeans_baseline

        base = kmeans_baseline(n=40, k=4, iterations=2)
        for age in base.history:
            assert np.allclose(sink.history[age], base.history[age])


class TestFuse:
    def test_fuse_preserves_values(self):
        program, sink = build_mulsum()
        fused = fuse(program, "mul2", "plus5")
        assert "mul2+plus5" in fused.kernels
        assert "mul2" not in fused.kernels
        run_sink(fused)
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_no_elide_with_other_consumer(self):
        """print fetches p_data, so the intermediate store must remain."""
        program, _ = build_mulsum()
        fused = fuse(program, "mul2", "plus5")
        k = fused.kernels["mul2+plus5"]
        assert "p_data" in k.stored_fields()

    def test_forced_elide_rejected_with_consumers(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            fuse(program, "mul2", "plus5", elide=True)

    def test_elide_drops_field(self):
        program, _ = build_mulsum()
        trimmed = program.without_kernels("print")
        fused = fuse(trimmed, "mul2", "plus5")
        k = fused.kernels["mul2+plus5"]
        assert "p_data" not in k.stored_fields()
        assert "p_data" not in fused.fields

    def test_elided_pipeline_still_correct(self):
        program, _ = build_mulsum()
        trimmed = program.without_kernels("print")
        fused = fuse(trimmed, "mul2", "plus5")
        result = run_program(fused, workers=2, max_age=3, timeout=60)
        m = result.fields["m_data"].fetch(3)
        assert m.tolist() == expected_series(4)[3][0].tolist()

    def test_fuse_then_coarsen(self):
        """Figure 4's Age 4: both knobs — one instance per age."""
        program, sink = build_mulsum()
        both = coarsen(fuse(program, "mul2", "plus5"), "mul2+plus5", "x", 5)
        result = run_sink(both)
        assert result.stats["mul2+plus5"].instances == 3
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])

    def test_non_pipeline_rejected(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            fuse(program, "init", "print")

    def test_fusable_pairs(self):
        program, _ = build_mulsum()
        pairs = fusable_pairs(program)
        assert ("mul2", "plus5") in pairs
        # plus5 -> mul2 crosses an age (a+1): not a same-age pipeline
        assert ("plus5", "mul2") not in pairs


class TestAdaptivePolicy:
    def _instr(self, kernel="assign", instances=1000, dispatch_us=40.0,
               kernel_us=10.0):
        instr = Instrumentation()
        for _ in range(instances):
            instr.record(kernel, dispatch_us * 1e-6, kernel_us * 1e-6)
        return instr

    def test_recommends_for_high_ratio(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        policy = AdaptivePolicy(ratio_target=0.25)
        decisions = policy.recommend(program, self._instr())
        assert len(decisions) == 1
        d = decisions[0]
        assert d.kernel == "assign" and d.factor > 1

    def test_no_recommendation_below_target(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        policy = AdaptivePolicy(ratio_target=0.25)
        instr = self._instr(dispatch_us=1.0, kernel_us=99.0)
        assert policy.recommend(program, instr) == []

    def test_min_instances_guard(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        policy = AdaptivePolicy(min_instances=10_000)
        assert policy.recommend(program, self._instr(instances=100)) == []

    def test_apply_produces_runnable_program(self):
        program, sink = build_kmeans(n=40, k=4, iterations=2,
                                     granularity="pair")
        policy = AdaptivePolicy()
        adapted = policy.apply(
            program, [GranularityDecision("assign", "x", 8)]
        )
        run_program(adapted, workers=2, timeout=60)
        from repro.workloads import kmeans_baseline

        base = kmeans_baseline(n=40, k=4, iterations=2)
        assert np.allclose(sink.history[2], base.history[2])

    def test_invalid_target(self):
        with pytest.raises(SchedulerError):
            AdaptivePolicy(ratio_target=0.0)

    def test_accepts_plain_stats_mapping(self):
        """recommend takes either an Instrumentation or its stats dict
        (the adaptation driver feeds per-interval deltas as a dict)."""
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        policy = AdaptivePolicy(ratio_target=0.25)
        stats = self._instr().stats()
        decisions = policy.recommend(program, stats)
        assert len(decisions) == 1 and decisions[0].kernel == "assign"

    def test_age_only_kernel_never_coarsened(self):
        """mulsum's print kernel has no index axis beyond the age
        dimension; even with a terrible dispatch ratio the policy must
        not recommend coarsening it."""
        program, _ = build_mulsum()
        assert coarsenable_vars(program.kernels["print"]) == []
        assert coarsenable_vars(program.kernels["mul2"]) == ["x"]
        policy = AdaptivePolicy(ratio_target=0.25, min_instances=10)
        instr = self._instr(kernel="print", instances=100,
                            dispatch_us=90.0, kernel_us=10.0)
        assert policy.recommend(program, instr) == []

    def test_recommends_fusion_for_hot_pipeline(self):
        """With fuse=True a hot producer->consumer pair becomes one
        FusionDecision, and the fused kernels are not also coarsened."""
        program, _ = build_mulsum()
        instr = Instrumentation()
        for _ in range(200):
            instr.record("mul2", 40e-6, 10e-6)
            instr.record("plus5", 40e-6, 10e-6)
        policy = AdaptivePolicy(ratio_target=0.25, min_instances=10)
        decisions = policy.recommend(program, instr, fuse=True)
        fusions = [d for d in decisions if isinstance(d, FusionDecision)]
        assert fusions == [FusionDecision("mul2", "plus5")]
        fused = {"mul2", "plus5"}
        assert not any(
            isinstance(d, GranularityDecision) and d.kernel in fused
            for d in decisions
        )

    def test_fuse_disabled_by_default(self):
        program, _ = build_mulsum()
        instr = Instrumentation()
        for _ in range(200):
            instr.record("mul2", 40e-6, 10e-6)
            instr.record("plus5", 40e-6, 10e-6)
        policy = AdaptivePolicy(ratio_target=0.25, min_instances=10)
        decisions = policy.recommend(program, instr)
        assert not any(isinstance(d, FusionDecision) for d in decisions)


class TestDecisionValidation:
    """GranularityDecision.apply clamps the factor domain so a live
    replan can never feed coarsen a degenerate factor."""

    def _program(self):
        program, _ = build_mulsum()
        return program

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SchedulerError, match="power of two"):
            GranularityDecision("mul2", "x", 3).apply(self._program())

    @pytest.mark.parametrize("factor", [0, -4, 1 << 21])
    def test_out_of_range_rejected(self, factor):
        with pytest.raises(SchedulerError, match="out of range"):
            GranularityDecision("mul2", "x", factor).apply(self._program())

    def test_non_integer_rejected(self):
        with pytest.raises(SchedulerError):
            GranularityDecision("mul2", "x", 2.0).apply(self._program())

    def test_bool_rejected(self):
        with pytest.raises(SchedulerError):
            GranularityDecision("mul2", "x", True).apply(self._program())

    def test_valid_factor_applies_byte_identical(self):
        program, sink = build_mulsum()
        coarse = GranularityDecision("mul2", "x", 4).apply(program)
        run_sink(coarse)
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_fusion_decision_applies(self):
        program, _ = build_mulsum()
        fused = FusionDecision("mul2", "plus5").apply(program)
        assert "mul2+plus5" in fused.kernels
