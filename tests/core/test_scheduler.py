"""Unit tests for the LLS transformations (coarsen / fuse / adaptive)."""

import numpy as np
import pytest

from repro.core import (
    AdaptivePolicy,
    GranularityDecision,
    Instrumentation,
    SchedulerError,
    coarsen,
    fusable_pairs,
    fuse,
    run_program,
)
from repro.workloads import build_kmeans, build_mulsum, expected_series


def run_sink(program, max_age=2, workers=2):
    return run_program(program, workers=workers, max_age=max_age, timeout=60)


class TestCoarsen:
    def test_reduces_instances_preserves_values(self):
        program, sink = build_mulsum()
        coarse = coarsen(program, "mul2", "x", 5)
        result = run_sink(coarse)
        assert result.stats["mul2"].instances == 3  # one per age
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_partial_factor(self):
        program, sink = build_mulsum()
        coarse = coarsen(program, "mul2", "x", 2)  # blocks of 2 over 5
        result = run_sink(coarse, max_age=1)
        assert result.stats["mul2"].instances == 2 * 3  # ceil(5/2) per age
        expected = expected_series(2)
        for age in expected:
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_factor_one_is_identity(self):
        program, _ = build_mulsum()
        assert coarsen(program, "mul2", "x", 1) is program

    def test_unknown_kernel(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            coarsen(program, "nope", "x", 2)

    def test_unknown_var(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            coarsen(program, "mul2", "y", 2)

    def test_invalid_factor(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            coarsen(program, "mul2", "x", 0)

    def test_coarsen_2d_kernel(self):
        """K-means' pair assign has two index vars; coarsening x batches
        points while c stays per-centroid."""
        program, sink = build_kmeans(
            n=40, k=4, iterations=2, granularity="pair"
        )
        coarse = coarsen(program, "assign", "x", 8)
        result = run_program(coarse, workers=2, timeout=60)
        # ceil(40/8)=5 x-blocks * 4 centroids * 2 iterations
        assert result.stats["assign"].instances == 5 * 4 * 2
        from repro.workloads import kmeans_baseline

        base = kmeans_baseline(n=40, k=4, iterations=2)
        for age in base.history:
            assert np.allclose(sink.history[age], base.history[age])


class TestFuse:
    def test_fuse_preserves_values(self):
        program, sink = build_mulsum()
        fused = fuse(program, "mul2", "plus5")
        assert "mul2+plus5" in fused.kernels
        assert "mul2" not in fused.kernels
        run_sink(fused)
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_no_elide_with_other_consumer(self):
        """print fetches p_data, so the intermediate store must remain."""
        program, _ = build_mulsum()
        fused = fuse(program, "mul2", "plus5")
        k = fused.kernels["mul2+plus5"]
        assert "p_data" in k.stored_fields()

    def test_forced_elide_rejected_with_consumers(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            fuse(program, "mul2", "plus5", elide=True)

    def test_elide_drops_field(self):
        program, _ = build_mulsum()
        trimmed = program.without_kernels("print")
        fused = fuse(trimmed, "mul2", "plus5")
        k = fused.kernels["mul2+plus5"]
        assert "p_data" not in k.stored_fields()
        assert "p_data" not in fused.fields

    def test_elided_pipeline_still_correct(self):
        program, _ = build_mulsum()
        trimmed = program.without_kernels("print")
        fused = fuse(trimmed, "mul2", "plus5")
        result = run_program(fused, workers=2, max_age=3, timeout=60)
        m = result.fields["m_data"].fetch(3)
        assert m.tolist() == expected_series(4)[3][0].tolist()

    def test_fuse_then_coarsen(self):
        """Figure 4's Age 4: both knobs — one instance per age."""
        program, sink = build_mulsum()
        both = coarsen(fuse(program, "mul2", "plus5"), "mul2+plus5", "x", 5)
        result = run_sink(both)
        assert result.stats["mul2+plus5"].instances == 3
        expected = expected_series(3)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])

    def test_non_pipeline_rejected(self):
        program, _ = build_mulsum()
        with pytest.raises(SchedulerError):
            fuse(program, "init", "print")

    def test_fusable_pairs(self):
        program, _ = build_mulsum()
        pairs = fusable_pairs(program)
        assert ("mul2", "plus5") in pairs
        # plus5 -> mul2 crosses an age (a+1): not a same-age pipeline
        assert ("plus5", "mul2") not in pairs


class TestAdaptivePolicy:
    def _instr(self, kernel="assign", instances=1000, dispatch_us=40.0,
               kernel_us=10.0):
        instr = Instrumentation()
        for _ in range(instances):
            instr.record(kernel, dispatch_us * 1e-6, kernel_us * 1e-6)
        return instr

    def test_recommends_for_high_ratio(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        policy = AdaptivePolicy(ratio_target=0.25)
        decisions = policy.recommend(program, self._instr())
        assert len(decisions) == 1
        d = decisions[0]
        assert d.kernel == "assign" and d.factor > 1

    def test_no_recommendation_below_target(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        policy = AdaptivePolicy(ratio_target=0.25)
        instr = self._instr(dispatch_us=1.0, kernel_us=99.0)
        assert policy.recommend(program, instr) == []

    def test_min_instances_guard(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        policy = AdaptivePolicy(min_instances=10_000)
        assert policy.recommend(program, self._instr(instances=100)) == []

    def test_apply_produces_runnable_program(self):
        program, sink = build_kmeans(n=40, k=4, iterations=2,
                                     granularity="pair")
        policy = AdaptivePolicy()
        adapted = policy.apply(
            program, [GranularityDecision("assign", "x", 8)]
        )
        run_program(adapted, workers=2, timeout=60)
        from repro.workloads import kmeans_baseline

        base = kmeans_baseline(n=40, k=4, iterations=2)
        assert np.allclose(sink.history[2], base.history[2])

    def test_invalid_target(self):
        with pytest.raises(SchedulerError):
            AdaptivePolicy(ratio_target=0.0)
