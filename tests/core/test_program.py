"""Unit tests for Program construction and validation."""

import pytest

from repro.core import (
    AgeExpr,
    DefinitionError,
    FetchSpec,
    FieldDef,
    KernelDef,
    Program,
    SemanticError,
    StoreSpec,
)


def nop(ctx):
    pass


class TestBuildAndValidate:
    def test_duplicate_field(self):
        with pytest.raises(DefinitionError):
            Program.build([FieldDef("a"), FieldDef("a")], [])

    def test_duplicate_kernel(self):
        ks = [KernelDef("k", nop), KernelDef("k", nop)]
        with pytest.raises(DefinitionError):
            Program.build([], ks)

    def test_field_kernel_name_collision(self):
        with pytest.raises(DefinitionError):
            Program.build([FieldDef("x")], [KernelDef("x", nop)])

    def test_unknown_fetch_field(self):
        k = KernelDef("k", nop, has_age=True,
                      fetches=(FetchSpec("v", "missing"),))
        with pytest.raises(DefinitionError):
            Program.build([FieldDef("a")], [k])

    def test_unknown_store_field(self):
        k = KernelDef("k", nop, has_age=True,
                      stores=(StoreSpec("missing"),))
        with pytest.raises(DefinitionError):
            Program.build([FieldDef("a")], [k])

    def test_dims_arity_checked_against_field(self):
        from repro.core import Dim

        k = KernelDef(
            "k", nop, has_age=True, index_vars=("x",),
            fetches=(FetchSpec("v", "a", dims=(Dim.of("x"),)),),
        )
        with pytest.raises(DefinitionError):
            Program.build([FieldDef("a", ndim=2)], [k])

    def test_aged_kernel_with_only_literal_fetches_rejected(self):
        k = KernelDef(
            "k", nop, has_age=True,
            fetches=(FetchSpec("v", "a", AgeExpr.const(0)),),
        )
        with pytest.raises(SemanticError):
            Program.build([FieldDef("a")], [k])

    def test_empty_dims_means_whole_field(self):
        k = KernelDef("k", nop, has_age=True, fetches=(FetchSpec("v", "a"),))
        prog = Program.build([FieldDef("a", ndim=3)], [k])
        assert prog.kernels["k"].fetches[0].whole_field()


class TestQueries:
    def _program(self):
        producer = KernelDef("p", nop, has_age=True,
                             stores=(StoreSpec("f"),))
        consumer = KernelDef("c", nop, has_age=True,
                             fetches=(FetchSpec("v", "f"),))
        return Program.build([FieldDef("f")], [producer, consumer])

    def test_producers_consumers(self):
        prog = self._program()
        assert [k.name for k in prog.producers_of("f")] == ["p"]
        assert [k.name for k in prog.consumers_of("f")] == ["c"]

    def test_sources(self):
        prog = self._program()
        assert [k.name for k in prog.sources()] == ["p"]

    def test_replace_kernel(self):
        prog = self._program()
        replaced = prog.replace_kernel(
            KernelDef("p", nop, has_age=True, stores=(StoreSpec("f"),),
                      cost_hint=9.0)
        )
        assert replaced.kernels["p"].cost_hint == 9.0
        assert prog.kernels["p"].cost_hint == 1.0  # original untouched

    def test_without_with_kernel(self):
        prog = self._program()
        smaller = prog.without_kernels("c")
        assert set(smaller.kernels) == {"p"}
        bigger = smaller.with_kernel(
            KernelDef("c2", nop, has_age=True,
                      fetches=(FetchSpec("v", "f"),))
        )
        assert set(bigger.kernels) == {"p", "c2"}
        with pytest.raises(DefinitionError):
            bigger.with_kernel(KernelDef("p", nop, has_age=True,
                                         stores=(StoreSpec("f"),)))

    def test_describe(self):
        text = self._program().describe()
        assert "int32[] f age;" in text
        assert "p:" in text and "c:" in text
