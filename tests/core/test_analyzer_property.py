"""Property tests for the dependency analyzer.

The core claim: the *set* of dispatched instances is a pure function of
what has been stored — never of the order the store events arrived in
(permutation invariance), and each instance is dispatched exactly once
(dispatch-once under any interleaving).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    AgeExpr,
    DependencyAnalyzer,
    Dim,
    FetchSpec,
    FieldDef,
    FieldStore,
    KernelDef,
    Program,
    StoreSpec,
)
from repro.core.events import StoreEvent
from repro.core.fields import normalize_index


def nop(ctx):
    pass


def make_program(n: int):
    """Three consumers of one field: per-element, blocked, whole."""
    per = KernelDef(
        "per", nop, has_age=True, index_vars=("x",),
        fetches=(FetchSpec("v", "data", dims=(Dim.of("x"),),
                           scalar=True),),
    )
    blocked = KernelDef(
        "blocked", nop, has_age=True, index_vars=("b",),
        fetches=(FetchSpec("v", "data", dims=(Dim.of("b", 4),)),),
    )
    whole = KernelDef(
        "whole", nop, has_age=True, fetches=(FetchSpec("v", "data"),),
    )
    stencil = KernelDef(
        "stencil", nop, has_age=True, index_vars=("x",),
        fetches=(
            FetchSpec("l", "data", dims=(Dim.of("x", offset=-1),),
                      scalar=True),
            FetchSpec("r", "data", dims=(Dim.of("x", offset=1),),
                      scalar=True),
        ),
    )
    return Program.build(
        [FieldDef("data", "int64", 1, shape=(n,))],
        [per, blocked, whole, stencil],
    )


def dispatch_all(program, n, order, ages):
    """Apply single-element stores in the given order; return the
    dispatched instance keys."""
    fields = FieldStore(program.fields.values())
    an = DependencyAnalyzer(program, fields)
    dispatched = set()
    for age in range(ages):
        for i in order:
            idx = normalize_index(i, 1)
            fields["data"].store(age, idx, i)
            for inst in an.on_store(StoreEvent("data", age, idx)):
                assert inst.key not in dispatched, "double dispatch"
                dispatched.add(inst.key)
    return dispatched


class TestPermutationInvariance:
    @given(
        st.integers(3, 12),
        st.permutations(list(range(12))),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_dispatch_set_is_order_independent(self, n, perm, ages):
        program = make_program(n)
        order = [i for i in perm if i < n]
        baseline = dispatch_all(program, n, list(range(n)), ages)
        shuffled = dispatch_all(make_program(n), n, order, ages)
        assert baseline == shuffled

    @given(st.integers(3, 12), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_complete_field_dispatches_everything(self, n, ages):
        program = make_program(n)
        dispatched = dispatch_all(program, n, list(range(n)), ages)
        per = {k for k in dispatched if k[0] == "per"}
        blocked = {k for k in dispatched if k[0] == "blocked"}
        whole = {k for k in dispatched if k[0] == "whole"}
        stencil = {k for k in dispatched if k[0] == "stencil"}
        assert len(per) == n * ages
        assert len(blocked) == -(-n // 4) * ages
        assert len(whole) == ages
        assert len(stencil) == n * ages

    @given(
        st.integers(4, 10),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_partial_stores_dispatch_only_satisfied(self, n, data):
        """With a strict subset stored, whole-field must not fire and
        per-element fires exactly on the stored subset."""
        program = make_program(n)
        subset = data.draw(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=n - 1)
        )
        fields = FieldStore(program.fields.values())
        an = DependencyAnalyzer(program, fields)
        dispatched = set()
        for i in sorted(subset):
            idx = normalize_index(i, 1)
            fields["data"].store(0, idx, i)
            for inst in an.on_store(StoreEvent("data", 0, idx)):
                dispatched.add(inst.key)
        per = {k[2][0] for k in dispatched if k[0] == "per"}
        assert per == subset
        assert not any(k[0] == "whole" for k in dispatched)
        # stencil instances need x-1, x and x+1 (clamped): exactly those
        # x whose clamped neighbourhood is inside the stored subset
        stencil = {k[2][0] for k in dispatched if k[0] == "stencil"}
        expected = {
            x for x in range(n)
            if max(0, x - 1) in subset and min(n - 1, x + 1) in subset
        }
        assert stencil == expected
