"""Unit tests for graphs: Digraph algorithms and the paper's views."""

import pytest

from repro.core import (
    DefinitionError,
    Digraph,
    Instrumentation,
    ascii_graph,
    dc_dag,
    final_graph,
    intermediate_graph,
    weighted_final_graph,
)
from repro.workloads import build_kmeans, build_mjpeg, build_mulsum
from repro.workloads.mjpeg import MJPEGConfig


class TestDigraph:
    def _diamond(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        return g

    def test_nodes_edges(self):
        g = self._diamond()
        assert len(g) == 4
        assert g.n_edges() == 4
        assert set(g.successors("a")) == {"b", "c"}
        assert set(g.predecessors("d")) == {"b", "c"}
        assert g.degree("a") == 2

    def test_attrs_update(self):
        g = Digraph()
        g.add_node("a", weight=1)
        g.add_node("a", color="red")
        assert g.node("a") == {"weight": 1, "color": "red"}
        g.add_edge("a", "b", w=1)
        g.add_edge("a", "b", x=2)
        assert g.edge("a", "b") == {"w": 1, "x": 2}

    def test_topological_sort(self):
        order = self._diamond().topological_sort()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detection(self):
        g = self._diamond()
        assert g.is_acyclic()
        g.add_edge("d", "a")
        assert not g.is_acyclic()
        with pytest.raises(DefinitionError):
            g.topological_sort()
        cycles = g.find_cycles()
        assert cycles and any("a" in c for c in cycles)

    def test_components(self):
        g = self._diamond()
        g.add_edge("x", "y")
        comps = g.weakly_connected_components()
        assert sorted(len(c) for c in comps) == [2, 4]

    def test_subgraph(self):
        g = self._diamond()
        sub = g.subgraph({"a", "b", "d"})
        assert len(sub) == 3
        assert sub.has_edge("a", "b") and sub.has_edge("b", "d")
        assert not sub.has_edge("a", "c")

    def test_to_dot(self):
        g = self._diamond()
        g.add_node("a", kind="field", label="A")
        dot = g.to_dot("test")
        assert "digraph test" in dot
        assert '"a" -> "b"' in dot
        assert "shape=box" in dot

    def test_to_networkx(self):
        nx_g = self._diamond().to_networkx()
        assert nx_g.number_of_nodes() == 4
        assert nx_g.number_of_edges() == 4


class TestPaperGraphs:
    def test_intermediate_graph_structure(self):
        """Figure 2: kernels connect through field vertices."""
        program, _ = build_mulsum()
        g = intermediate_graph(program)
        assert g.node("m_data")["kind"] == "field"
        assert g.has_edge("init", "m_data")
        assert g.has_edge("m_data", "mul2")
        assert g.has_edge("mul2", "p_data")
        assert g.has_edge("p_data", "plus5")
        assert g.has_edge("plus5", "m_data")  # the cycle through the field
        assert g.has_edge("m_data", "print")
        assert g.has_edge("p_data", "print")

    def test_final_graph_merges_fields(self):
        """Figure 3: field vertices disappear; the kernel cycle remains."""
        program, _ = build_mulsum()
        g = final_graph(program)
        assert set(g.nodes()) == {"init", "mul2", "plus5", "print"}
        assert g.has_edge("init", "mul2")
        assert g.has_edge("mul2", "plus5")
        assert g.has_edge("plus5", "mul2")
        assert not g.is_acyclic()  # cyclic program

    def test_final_graph_age_delta(self):
        program, _ = build_mulsum()
        g = final_graph(program)
        assert g.edge("mul2", "plus5")["age_delta"] == 0  # pipeline
        assert g.edge("plus5", "mul2")["age_delta"] == 1  # feedback

    def test_dc_dag_is_acyclic(self):
        """Figure 4: unrolling by age removes every cycle."""
        program, _ = build_mulsum()
        g = dc_dag(program, max_age=4)
        assert g.is_acyclic()
        assert g.has_edge(("mul2", 0), ("plus5", 0))
        assert g.has_edge(("plus5", 0), ("mul2", 1))
        assert not g.has_edge(("plus5", 0), ("mul2", 0))

    def test_dc_dag_init_feeds_age0(self):
        program, _ = build_mulsum()
        g = dc_dag(program, max_age=1)
        assert g.has_edge(("init", None), ("mul2", 0))
        assert not g.has_edge(("init", None), ("mul2", 1))

    def test_kmeans_graph_loop(self):
        """Figure 7: assign/refine form the aging loop."""
        program, _ = build_kmeans(n=10, k=2, iterations=2)
        g = final_graph(program)
        assert g.has_edge("assign", "refine")
        assert g.has_edge("refine", "assign")
        assert g.has_edge("init", "assign")

    def test_mjpeg_graph_fanout(self):
        """Figure 8: read feeds the three DCTs, which feed vlc."""
        cfg = MJPEGConfig(width=32, height=32, frames=1)
        program, _ = build_mjpeg(config=cfg)
        g = final_graph(program)
        for dct in ("ydct", "udct", "vdct"):
            assert g.has_edge("read", dct)
            assert g.has_edge(dct, "vlc")
        assert g.is_acyclic()  # MJPEG has no feedback

    def test_weighted_graph(self):
        program, _ = build_mulsum()
        instr = Instrumentation()
        instr.record("mul2", 1e-6, 5e-6)
        instr.record("mul2", 1e-6, 5e-6)
        g = weighted_final_graph(program, instr)
        assert g.node("mul2")["weight"] == pytest.approx(10e-6)
        assert g.node("mul2")["instances"] == 2
        assert g.edge("mul2", "plus5")["weight"] == 2.0

    def test_ascii_graph_renders(self):
        program, _ = build_mulsum()
        text = ascii_graph(final_graph(program), "title")
        assert text.startswith("title")
        assert "(mul2)" in text
