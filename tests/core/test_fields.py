"""Unit tests for write-once, aging, multi-dimensional fields."""

import numpy as np
import pytest

from repro.core import (
    AgeError,
    CollectedAgeError,
    DefinitionError,
    ExtentError,
    FieldDef,
    FieldStore,
    LocalField,
    WriteOnceViolation,
    normalize_index,
)
from repro.core.fields import Field, index_shape


def make(name="f", dtype="int32", ndim=1, aging=True, shape=None) -> Field:
    return Field(FieldDef(name, dtype, ndim, aging, shape))


class TestFieldDef:
    def test_rejects_unknown_dtype(self):
        with pytest.raises(DefinitionError):
            FieldDef("f", "complex128", 1)

    def test_rejects_zero_dims(self):
        with pytest.raises(DefinitionError):
            FieldDef("f", "int32", 0)

    def test_shape_must_match_ndim(self):
        with pytest.raises(DefinitionError):
            FieldDef("f", "int32", 2, shape=(3,))

    def test_shape_rejects_negative(self):
        with pytest.raises(DefinitionError):
            FieldDef("f", "int32", 1, shape=(-1,))

    def test_np_dtype(self):
        assert FieldDef("f", "float32", 1).np_dtype == np.float32


class TestNormalizeIndex:
    def test_scalar_becomes_unit_slice(self):
        assert normalize_index(3, 1) == (slice(3, 4),)

    def test_tuple_mixed(self):
        idx = normalize_index((2, slice(0, 4)), 2)
        assert idx == (slice(2, 3), slice(0, 4))

    def test_none_start_defaults_to_zero(self):
        assert normalize_index(slice(None, 5), 1) == (slice(0, 5),)

    def test_rejects_wrong_arity(self):
        with pytest.raises(ExtentError):
            normalize_index((1, 2), 1)

    def test_rejects_negative(self):
        with pytest.raises(ExtentError):
            normalize_index(-1, 1)

    def test_rejects_open_ended(self):
        with pytest.raises(ExtentError):
            normalize_index(slice(2, None), 1)

    def test_rejects_step(self):
        with pytest.raises(ExtentError):
            normalize_index(slice(0, 4, 2), 1)

    def test_index_shape(self):
        assert index_shape((slice(2, 5), slice(0, 3))) == (3, 3)


class TestWriteOnce:
    def test_store_then_fetch(self):
        f = make()
        f.store(0, 2, 7)
        assert f.fetch(0, 2).item() == 7

    def test_double_store_same_element_raises(self):
        f = make()
        f.store(0, 1, 5)
        with pytest.raises(WriteOnceViolation) as e:
            f.store(0, 1, 6)
        assert e.value.field == "f"
        assert e.value.age == 0
        assert e.value.index == (1,)

    def test_overlapping_region_raises(self):
        f = make()
        f.store(0, slice(0, 4), [1, 2, 3, 4])
        with pytest.raises(WriteOnceViolation):
            f.store(0, slice(3, 6), [9, 9, 9])

    def test_same_position_different_age_is_fine(self):
        f = make()
        f.store(0, 0, 1)
        f.store(1, 0, 2)
        assert f.fetch(0, 0).item() == 1
        assert f.fetch(1, 0).item() == 2

    def test_non_aging_rejects_age(self):
        f = make(aging=False)
        f.store(0, 0, 1)
        with pytest.raises(AgeError):
            f.store(1, 0, 1)

    def test_negative_age_rejected(self):
        with pytest.raises(AgeError):
            make().store(-1, 0, 1)


class TestImplicitResize:
    def test_store_grows_extent(self):
        f = make()
        assert f.extent == (0,)
        info = f.store(0, 4, 1)
        assert f.extent == (5,)
        assert info is not None
        assert info.old_extent == (0,)
        assert info.new_extent == (5,)

    def test_no_resize_within_extent(self):
        f = make()
        f.store(0, 9, 1)
        assert f.store(0, 3, 1) is None

    def test_resize_preserves_other_ages(self):
        f = make()
        f.store(0, slice(0, 3), [1, 2, 3])
        f.store(1, 7, 9)  # grows to 8; age 0 data must survive
        assert f.fetch(0, slice(0, 3)).tolist() == [1, 2, 3]

    def test_2d_resize(self):
        f = make(ndim=2)
        f.store(0, (slice(0, 2), slice(0, 3)), np.ones((2, 3)))
        assert f.extent == (2, 3)
        f.store(0, (slice(2, 4), slice(0, 5)), np.ones((4, 5))[:2])
        assert f.extent == (4, 5)

    def test_declared_shape_fixes_extent(self):
        f = make(shape=(6,))
        assert f.extent == (6,)
        f.store(0, 5, 1)
        with pytest.raises(ExtentError):
            f.store(0, 6, 1)

    def test_value_shape_mismatch(self):
        f = make()
        with pytest.raises(ExtentError):
            f.store(0, slice(0, 3), [1, 2])

    def test_scalar_broadcast_into_region(self):
        f = make()
        f.store(0, slice(0, 3), 7)
        assert f.fetch(0, slice(0, 3)).tolist() == [7, 7, 7]


class TestCompleteness:
    def test_incomplete_whole_field(self):
        f = make()
        f.store(0, slice(0, 2), [1, 2])
        f.store(0, 3, 4)  # gap at index 2
        assert not f.is_complete(0)

    def test_complete_whole_field(self):
        f = make()
        f.store(0, slice(0, 4), [1, 2, 3, 4])
        assert f.is_complete(0)

    def test_untouched_field_never_complete(self):
        assert not make().is_complete(0)
        f = make(shape=(0,))
        assert not f.is_complete(0)

    def test_region_completeness(self):
        f = make()
        f.store(0, slice(2, 5), [1, 2, 3])
        assert f.is_complete(0, slice(2, 5))
        assert f.is_complete(0, slice(3, 4))
        assert not f.is_complete(0, slice(0, 3))

    def test_region_beyond_extent(self):
        f = make()
        f.store(0, slice(0, 2), [1, 2])
        assert not f.is_complete(0, slice(0, 5))

    def test_declared_shape_not_complete_until_all_written(self):
        f = make(shape=(4,))
        f.store(0, 0, 1)
        assert not f.is_complete(0)
        f.store(0, slice(1, 4), [2, 3, 4])
        assert f.is_complete(0)

    def test_fetch_incomplete_raises(self):
        f = make()
        f.store(0, 0, 1)
        with pytest.raises(ExtentError):
            f.fetch(0, slice(0, 3))

    def test_peek_returns_none_for_incomplete(self):
        f = make()
        assert f.peek(0) is None
        f.store(0, slice(0, 2), [1, 2])
        assert f.peek(0).tolist() == [1, 2]

    def test_written_count(self):
        f = make()
        f.store(0, slice(0, 3), [1, 2, 3])
        assert f.written_count(0) == 3
        assert f.written_count(1) == 0


class TestGarbageCollection:
    def test_collect_age_frees_and_blocks_fetch(self):
        f = make()
        f.store(0, slice(0, 128), np.arange(128))
        freed = f.collect_age(0)
        assert freed > 0
        with pytest.raises(CollectedAgeError):
            f.fetch(0, 0)
        assert not f.is_complete(0)

    def test_collect_is_idempotent(self):
        f = make()
        f.store(0, 0, 1)
        f.collect_age(0)
        assert f.collect_age(0) == 0

    def test_collect_below(self):
        f = make()
        for age in range(4):
            f.store(age, 0, age)
        f.collect_below(2)
        with pytest.raises(CollectedAgeError):
            f.fetch(1, 0)
        assert f.fetch(2, 0).item() == 2

    def test_store_to_collected_age_raises(self):
        f = make()
        f.store(0, 0, 1)
        f.collect_age(0)
        with pytest.raises(CollectedAgeError):
            f.store(0, 1, 2)

    def test_ages_excludes_collected(self):
        f = make()
        f.store(0, 0, 1)
        f.store(1, 0, 1)
        f.collect_age(0)
        assert f.ages() == [1]


class TestLocalField:
    def test_put_grows(self):
        lf = LocalField("int32", 1)
        for i in range(5):
            lf.put(i + 10, i)
        assert lf.data.tolist() == [10, 11, 12, 13, 14]
        assert lf.extent(0) == 5

    def test_put_is_rewritable(self):
        lf = LocalField()
        lf.put(1, 0)
        lf.put(2, 0)  # locals are not write-once
        assert lf.get(0) == 2

    def test_2d(self):
        lf = LocalField("float64", 2)
        lf.put(3.5, 1, 2)
        assert lf.extent(0) == 2 and lf.extent(1) == 3
        assert lf.get(1, 2) == 3.5

    def test_wrong_arity(self):
        with pytest.raises(ExtentError):
            LocalField(ndim=2).put(1, 0)

    def test_from_array(self):
        lf = LocalField().from_array([1, 2, 3])
        assert lf.data.tolist() == [1, 2, 3]


class TestFieldStore:
    def test_add_and_lookup(self):
        fs = FieldStore([FieldDef("a"), FieldDef("b")])
        assert "a" in fs and "b" in fs
        assert fs["a"].name == "a"
        assert fs.names() == ["a", "b"]

    def test_duplicate_rejected(self):
        fs = FieldStore([FieldDef("a")])
        with pytest.raises(DefinitionError):
            fs.add(FieldDef("a"))

    def test_unknown_lookup(self):
        with pytest.raises(DefinitionError):
            FieldStore()["missing"]

    def test_live_bytes_and_collect(self):
        fs = FieldStore([FieldDef("a")])
        fs["a"].store(0, slice(0, 64), np.zeros(64))
        before = fs.live_bytes()
        assert before > 0
        fs.collect_below(1)
        assert fs.live_bytes() < before
