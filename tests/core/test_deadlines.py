"""Unit tests for timers and deadline expressions (fake clock)."""

from repro.core import Timer, TimerSet


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestTimer:
    def test_elapsed_tracks_clock(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.050)
        assert t.elapsed_ms() == 50.0

    def test_expired(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        assert not t.expired(100)
        clock.advance(0.101)
        assert t.expired(100)

    def test_reset(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(1.0)
        t.reset()  # t1 = now
        assert t.elapsed_ms() == 0.0
        assert not t.expired(100)

    def test_remaining(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.030)
        assert t.remaining_ms(100) == 70.0
        clock.advance(0.100)
        assert t.remaining_ms(100) == -30.0

    def test_boundary_is_not_expired(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.100)
        assert not t.expired(100)  # strict: t1 + 100ms must have *passed*

    def test_default_clock_is_monotonic(self):
        t = Timer("t")
        a = t.now()
        b = t.now()
        assert b >= a


class TestTimerSet:
    def test_lookup_and_contains(self):
        ts = TimerSet(("t1", "t2"))
        assert "t1" in ts and "t3" not in ts
        assert ts["t1"].name == "t1"

    def test_as_mapping(self):
        ts = TimerSet(("t1",))
        m = ts.as_mapping()
        assert set(m) == {"t1"}

    def test_reset_all(self):
        clock = FakeClock()
        ts = TimerSet(("a", "b"), clock)
        clock.advance(2.0)
        ts.reset_all()
        assert ts["a"].elapsed_ms() == 0.0
        assert ts["b"].elapsed_ms() == 0.0
