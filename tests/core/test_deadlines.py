"""Unit tests for timers and deadline expressions (fake clock)."""

from repro.core import Timer, TimerSet


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestTimer:
    def test_elapsed_tracks_clock(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.050)
        assert t.elapsed_ms() == 50.0

    def test_expired(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        assert not t.expired(100)
        clock.advance(0.101)
        assert t.expired(100)

    def test_reset(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(1.0)
        t.reset()  # t1 = now
        assert t.elapsed_ms() == 0.0
        assert not t.expired(100)

    def test_remaining(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.030)
        assert t.remaining_ms(100) == 70.0
        clock.advance(0.100)
        assert t.remaining_ms(100) == -30.0

    def test_boundary_is_not_expired(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.100)
        assert not t.expired(100)  # strict: t1 + 100ms must have *passed*

    def test_default_clock_is_monotonic(self):
        t = Timer("t")
        a = t.now()
        b = t.now()
        assert b >= a


class TestTimerSet:
    def test_lookup_and_contains(self):
        ts = TimerSet(("t1", "t2"))
        assert "t1" in ts and "t3" not in ts
        assert ts["t1"].name == "t1"

    def test_as_mapping(self):
        ts = TimerSet(("t1",))
        m = ts.as_mapping()
        assert set(m) == {"t1"}

    def test_reset_all(self):
        clock = FakeClock()
        ts = TimerSet(("a", "b"), clock)
        clock.advance(2.0)
        ts.reset_all()
        assert ts["a"].elapsed_ms() == 0.0
        assert ts["b"].elapsed_ms() == 0.0


class TestDeadlineMisses:
    def test_expired_polls_count_misses(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        assert t.misses == 0
        assert not t.expired(100)
        assert t.misses == 0  # an unexpired poll is not a miss
        clock.advance(0.101)
        assert t.expired(100)
        assert t.expired(100)
        assert t.misses == 2  # every expired poll steers the fallback

    def test_boundary_poll_is_not_a_miss(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.100)
        assert not t.expired(100)  # exactly at the deadline: not passed
        assert t.misses == 0

    def test_reset_clears_expiry_but_keeps_miss_history(self):
        clock = FakeClock()
        t = Timer("t1", clock)
        clock.advance(0.2)
        assert t.expired(100)
        t.reset()
        assert not t.expired(100)
        assert t.misses == 1

    def test_timerset_total_misses(self):
        clock = FakeClock()
        ts = TimerSet(("a", "b"), clock)
        clock.advance(1.0)
        assert ts["a"].expired(100)
        assert ts["b"].expired(500)
        assert ts["b"].expired(500)
        assert ts.total_misses() == 3


class TestDeadlineSteering:
    """A blown deadline steers a kernel down its fallback branch —
    storing to a *different* field (the paper's frame-skipping encoder,
    section V-B) — and the miss surfaces in the run's metrics."""

    def test_miss_steers_kernel_to_fallback_store(self):
        from repro.core import (
            ExecutionNode,
            FieldDef,
            KernelDef,
            Program,
            StoreSpec,
        )

        clock = FakeClock()
        encoded, dropped = [], []

        def encode(ctx):
            if ctx.age >= 4:
                return
            t = ctx.timers["t1"]
            if t.expired(100):
                # Deadline blown: skip this frame, restart the deadline.
                t.reset()
                dropped.append(ctx.age)
                ctx.emit("skipped", ctx.age)
            else:
                encoded.append(ctx.age)
                ctx.emit("frame", ctx.age)
            clock.advance(0.060)  # 60 ms of encoding work per frame

        program = Program.build(
            [FieldDef("frame", "int64", 1),
             FieldDef("skipped", "int64", 1)],
            [KernelDef("encode", encode, has_age=True,
                       stores=(StoreSpec("frame", key="frame"),
                               StoreSpec("skipped", key="skipped")))],
            ("t1",),
        )
        node = ExecutionNode(program, 1, clock=clock)
        result = node.run(timeout=60)
        assert result.reason == "idle"
        # 0 ms, 60 ms: on time; 120 ms: missed (reset); then 60 ms again.
        assert encoded == [0, 1, 3]
        assert dropped == [2]
        assert node.timers["t1"].misses == 1
        snap = result.metrics.snapshot()
        assert snap["deadline.misses.t1"]["value"] == 1
