"""Execution-backend tests: threads/processes parity, fault isolation,
shared-memory hygiene, and the backend plumbing itself."""

import glob
import os

import numpy as np
import pytest

from repro.core import (
    AgeExpr,
    Dim,
    ExecutionNode,
    FetchSpec,
    FieldDef,
    KernelBodyError,
    KernelDef,
    KernelInstance,
    ProcessBackend,
    Program,
    ReadyQueue,
    RuntimeStateError,
    StoreSpec,
    ThreadBackend,
    WorkerProcessError,
    resolve_backend,
    run_program,
)
from repro.workloads import (
    MJPEGConfig,
    build_kmeans,
    build_mjpeg,
    kmeans_baseline,
    mjpeg_baseline,
)

needs_fork = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="processes backend tests use the fork start method",
)


def _leaked_segments(run_id: str) -> list:
    return glob.glob(f"/dev/shm/p2g{run_id}_*")


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_names(self):
        assert isinstance(resolve_backend("threads"), ThreadBackend)
        assert isinstance(resolve_backend("processes"), ProcessBackend)

    def test_instance_passthrough(self):
        b = ProcessBackend()
        assert resolve_backend(b) is b

    def test_unknown_rejected(self):
        with pytest.raises(RuntimeStateError, match="unknown execution"):
            resolve_backend("gpu")

    def test_result_records_backend(self):
        program, _ = build_kmeans(n=20, k=2, iterations=2,
                                  granularity="point")
        result = run_program(program, workers=1, timeout=60)
        assert result.backend == "threads"


class TestProcessBackendValidation:
    @needs_fork
    def test_rejects_plain_field_store(self):
        from repro.core import FieldStore

        program, _ = build_kmeans(n=20, k=2, iterations=2,
                                  granularity="point")
        node = ExecutionNode(
            program, workers=1,
            fields=FieldStore(program.fields.values()),
            backend="processes",
        )
        with pytest.raises(RuntimeStateError, match="SharedFieldStore"):
            node.start()

    def test_rejects_timers(self):
        program = Program.build(
            fields=[FieldDef("f", "int32", 1, shape=(4,))],
            kernels=[KernelDef(
                "init", lambda ctx: ctx.emit("f", np.arange(4)),
                stores=(StoreSpec("f", age=AgeExpr.const(0)),),
            )],
            timers=["t"],
        )
        node = ExecutionNode(program, workers=1, backend="processes")
        with pytest.raises(RuntimeStateError, match="timer"):
            node.start()

    def test_non_fork_requires_factory(self):
        program, _ = build_kmeans(n=20, k=2, iterations=2,
                                  granularity="point")
        node = ExecutionNode(
            program, workers=1,
            backend=ProcessBackend(start_method="spawn"),
        )
        with pytest.raises(RuntimeStateError, match="program_factory"):
            node.start()


# ----------------------------------------------------------------------
# Workload parity: the acceptance bar for the backend layer
# ----------------------------------------------------------------------
@needs_fork
class TestWorkloadParity:
    CFG = MJPEGConfig(width=64, height=32, frames=3)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_mjpeg_bitstream_identical(self, workers):
        reference = mjpeg_baseline(config=self.CFG)
        streams = {}
        for backend in ("threads", "processes"):
            program, sink = build_mjpeg(config=self.CFG)
            result = run_program(
                program, workers=workers, timeout=120, backend=backend
            )
            assert result.reason == "idle"
            assert result.backend == backend
            streams[backend] = sink.stream()
        assert streams["threads"] == reference
        assert streams["processes"] == reference

    @pytest.mark.parametrize("granularity", ["point", "pair"])
    def test_kmeans_centroids_identical(self, granularity):
        expected = kmeans_baseline(n=60, k=5, iterations=4)
        for backend in ("threads", "processes"):
            program, sink = build_kmeans(
                n=60, k=5, iterations=4, granularity=granularity
            )
            result = run_program(
                program, workers=2, timeout=120, backend=backend
            )
            assert result.reason == "idle"
            assert sink.history.keys() == expected.history.keys()
            for age, centroids in expected.history.items():
                assert np.array_equal(sink.history[age], centroids), (
                    f"{backend}: centroid divergence at age {age}"
                )

    def test_instrumentation_counts_match(self):
        counts = {}
        for backend in ("threads", "processes"):
            program, _ = build_mjpeg(config=self.CFG)
            result = run_program(
                program, workers=2, timeout=120, backend=backend
            )
            stats = result.instrumentation.stats()
            counts[backend] = {k: s.instances for k, s in stats.items()}
            if backend == "processes":
                assert any(s.ipc_time > 0 for s in stats.values())
        assert counts["threads"] == counts["processes"]


# ----------------------------------------------------------------------
# Fault isolation
# ----------------------------------------------------------------------
@needs_fork
class TestWorkerFaults:
    def _program(self, body):
        k = KernelDef(
            "boom", body, has_age=True,
            fetches=(FetchSpec("v", "f"),),
            age_limit=1,
        )
        init = KernelDef(
            "init", lambda ctx: ctx.emit("f", np.arange(4)),
            stores=(StoreSpec("f", age=AgeExpr.const(0)),),
        )
        return Program.build(
            fields=[FieldDef("f", "int64", 1, shape=(4,))],
            kernels=[init, k],
        )

    def test_body_exception_is_kernel_body_error(self):
        def body(ctx):
            raise ValueError("intentional")

        program = self._program(body)
        with pytest.raises(KernelBodyError) as ei:
            run_program(program, workers=1, timeout=60,
                        backend="processes")
        # the remote type, message and traceback all survive the hop
        assert "ValueError: intentional" in str(ei.value)
        assert "Traceback" in str(ei.value)

    def test_worker_crash_raises_not_hangs(self):
        def body(ctx):
            os._exit(3)  # hard-kill the worker mid-instance

        program = self._program(body)
        # depending on timing the proxy sees the dead process or the
        # closed pipe first; both must surface as WorkerProcessError
        with pytest.raises(WorkerProcessError,
                           match="exited with code|connection lost"):
            run_program(program, workers=1, timeout=60,
                        backend="processes")

    def test_crash_leaves_no_segments(self):
        def body(ctx):
            os._exit(3)

        program = self._program(body)
        node = ExecutionNode(program, workers=1, backend="processes")
        run_id = node.fields.run_id
        node.start()
        with pytest.raises(WorkerProcessError):
            node.join()
        assert _leaked_segments(run_id) == []


# ----------------------------------------------------------------------
# Shared-memory hygiene
# ----------------------------------------------------------------------
@needs_fork
class TestSegmentLifecycle:
    def test_run_unlinks_every_segment(self):
        program, sink = build_kmeans(n=40, k=4, iterations=3,
                                     granularity="point")
        node = ExecutionNode(program, workers=2, backend="processes")
        run_id = node.fields.run_id
        node.start()
        node.join()
        assert sink.final_centroids() is not None
        assert _leaked_segments(run_id) == []

    def test_gc_unlinks_retired_ages(self):
        # After a run, even intermediate ages' segments must be gone;
        # sample a mid-run age of the aging centroids field.
        program, _ = build_kmeans(n=40, k=4, iterations=4,
                                  granularity="point")
        node = ExecutionNode(program, workers=1, backend="processes")
        run_id = node.fields.run_id
        node.start()
        node.join()
        assert not os.path.exists(
            f"/dev/shm/p2g{run_id}_centroids_1"
        )


# ----------------------------------------------------------------------
# Ready-queue boundedness (regression for the age-bucket map)
# ----------------------------------------------------------------------
class TestReadyQueueAgeCounts:
    def test_zeroed_buckets_are_dropped(self):
        q = ReadyQueue()
        k = KernelDef("k", lambda ctx: None, has_age=True)
        for age in range(100):
            q.push(KernelInstance(k, age))
        for _ in range(100):
            q.pop()
        # the bucket map must not grow with retired ages
        assert q._age_counts == {}
        assert q.min_age() is None

    def test_partial_drain_keeps_live_buckets(self):
        q = ReadyQueue()
        k = KernelDef("k", lambda ctx: None, has_age=True)
        for age in (0, 0, 1):
            q.push(KernelInstance(k, age))
        q.pop()
        assert q._age_counts == {0: 1, 1: 1}
        assert q.min_age() == 0
        q.pop()
        assert q._age_counts == {1: 1}
        assert q.min_age() == 1


# ----------------------------------------------------------------------
# Output-handler plumbing shared by both backends
# ----------------------------------------------------------------------
class TestOutputHandler:
    def test_missing_handler_raises(self):
        def body(ctx):
            ctx.output("x", 1)

        program = Program.build(
            fields=[],
            kernels=[KernelDef("k", body)],
        )
        with pytest.raises(RuntimeStateError, match="output handler"):
            run_program(program, workers=1, timeout=60)

    def test_handler_survives_functional_updates(self):
        program, _ = build_kmeans(n=20, k=2, iterations=2,
                                  granularity="point")
        assert program.output_handler is not None
        updated = program.replace_kernel(program.kernels["print"])
        assert updated.output_handler is program.output_handler
        dropped = program.without_kernels("print")
        assert dropped.output_handler is program.output_handler
