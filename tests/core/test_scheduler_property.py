"""Property tests: coarsening with remainder blocks is value-preserving.

The LLS may pick any factor; when it does not divide the field extent
the last block is a remainder (smaller) block.  These tests drive
:func:`repro.core.coarsen` directly with factors *chosen not to divide*
the extent and assert the coarse run produces byte-identical results to
the fine-grained run for all three paper workloads (figure 5 mulsum,
K-means, figure 8 MJPEG).  ``GranularityDecision`` would reject most of
these factors (the online path is restricted to powers of two), which
is exactly why the underlying rewrite is exercised on its own here.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import coarsen, run_program
from repro.workloads import (
    build_kmeans,
    build_mjpeg,
    build_mulsum,
    expected_series,
)
from repro.media.yuv import synthetic_sequence
from repro.workloads.mjpeg import MJPEGConfig


def _run(program, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("timeout", 60)
    return run_program(program, **kw)


class TestMulsumRemainder:
    @given(
        n=st.integers(min_value=5, max_value=12),
        factor=st.integers(min_value=2, max_value=7),
    )
    @settings(max_examples=12, deadline=None)
    def test_non_dividing_factor_byte_identical(self, n, factor):
        if n % factor == 0:
            factor += 1  # force a remainder block
        values = list(range(10, 10 + n))
        program, sink = build_mulsum(values=values)
        coarse = coarsen(program, "mul2", "x", factor)
        result = _run(coarse, max_age=2)
        # ceil(n/factor) blocks per age, 3 ages (0..2)
        assert result.stats["mul2"].instances == -(-n // factor) * 3
        expected = expected_series(3, values=values)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])


class TestKMeansRemainder:
    @given(
        n=st.integers(min_value=10, max_value=40),
        factor=st.integers(min_value=3, max_value=9),
    )
    @settings(max_examples=6, deadline=None)
    def test_non_dividing_factor_byte_identical(self, n, factor):
        if n % factor == 0:
            factor += 1
        program, sink = build_kmeans(
            n=n, k=3, iterations=2, granularity="point"
        )
        _fine_prog, fine_sink = build_kmeans(
            n=n, k=3, iterations=2, granularity="point"
        )
        _run(_fine_prog)
        coarse = coarsen(program, "assign", "x", factor)
        _run(coarse)
        assert sink.history.keys() == fine_sink.history.keys()
        for age in fine_sink.history:
            assert np.array_equal(sink.history[age], fine_sink.history[age])


class TestMJPEGRemainder:
    @given(factor=st.integers(min_value=3, max_value=5))
    @settings(max_examples=3, deadline=None)
    def test_non_dividing_factor_byte_identical(self, factor):
        # 32x16 luma -> 4x2 blocks; 3 and 5 never divide the 4-wide
        # block row, so every coarse row ends in a remainder block.
        cfg = MJPEGConfig(width=32, height=16, frames=2)
        frames = synthetic_sequence(cfg.frames, cfg.width, cfg.height,
                                    cfg.seed)
        fine_prog, fine_sink = build_mjpeg(frames, cfg)
        _run(fine_prog)
        program, sink = build_mjpeg(frames, cfg)
        coarse = coarsen(program, "ydct", "bx", factor)
        _run(coarse)
        assert sink.frame_count() == fine_sink.frame_count() == 2
        assert sink.stream() == fine_sink.stream()
