"""Property-based tests (hypothesis) for field invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import FieldDef, WriteOnceViolation
from repro.core.fields import Field


def segments(draw, total: int):
    """Split [0, total) into random disjoint segments."""
    cuts = draw(
        st.lists(st.integers(0, total), max_size=6, unique=True)
    )
    points = sorted(set(cuts) | {0, total})
    return list(zip(points[:-1], points[1:]))


@st.composite
def partitioned_field(draw):
    total = draw(st.integers(1, 40))
    segs = segments(draw, total)
    order = draw(st.permutations(segs))
    return total, list(order)


class TestWriteOnceProperties:
    @given(partitioned_field())
    @settings(max_examples=60)
    def test_disjoint_segments_never_violate(self, case):
        """Storing any disjoint partition of the field, in any order,
        succeeds and ends complete."""
        total, segs = case
        f = Field(FieldDef("f", "int64", 1))
        for lo, hi in segs:
            if hi > lo:
                f.store(0, slice(lo, hi), np.arange(lo, hi))
        assert f.is_complete(0, slice(0, total)) or total == 0
        got = f.fetch(0, slice(0, total))
        assert got.tolist() == list(range(total))

    @given(
        st.integers(0, 30),
        st.integers(1, 10),
        st.integers(0, 30),
        st.integers(1, 10),
    )
    @settings(max_examples=80)
    def test_overlap_always_raises(self, a_lo, a_len, b_lo, b_len):
        """Any two overlapping stores to one age conflict; disjoint ones
        do not."""
        f = Field(FieldDef("f", "int64", 1))
        a = (a_lo, a_lo + a_len)
        b = (b_lo, b_lo + b_len)
        f.store(0, slice(*a), np.zeros(a_len))
        overlaps = a[0] < b[1] and b[0] < a[1]
        if overlaps:
            try:
                f.store(0, slice(*b), np.zeros(b_len))
                raised = False
            except WriteOnceViolation:
                raised = True
            assert raised
        else:
            f.store(0, slice(*b), np.zeros(b_len))

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_store_count_equals_unique_elements(self, indices):
        """store_count counts exactly the distinct elements written."""
        f = Field(FieldDef("f", "int64", 1))
        written = set()
        for i in indices:
            if i in written:
                continue
            f.store(0, i, i)
            written.add(i)
        assert f.written_count(0) == len(written)

    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.data(),
    )
    @settings(max_examples=40)
    def test_2d_roundtrip(self, h, w, data):
        """A field stored in random rectangular tiles reads back exactly."""
        f = Field(FieldDef("f", "float64", 2))
        ref = np.arange(h * w, dtype=float).reshape(h, w)
        # store row by row with random column splits
        for r in range(h):
            cut = data.draw(st.integers(0, w))
            if cut:
                f.store(0, (r, slice(0, cut)), ref[r, :cut])
            if cut < w:
                f.store(0, (r, slice(cut, w)), ref[r, cut:])
        assert f.is_complete(0, (slice(0, h), slice(0, w)))
        assert np.array_equal(f.fetch(0, (slice(0, h), slice(0, w))), ref)

    @given(st.integers(0, 6), st.integers(0, 6))
    @settings(max_examples=40)
    def test_aging_isolation(self, age_a, age_b):
        """Writes to one age are never visible at another."""
        f = Field(FieldDef("f", "int64", 1))
        f.store(age_a, 0, 111)
        if age_b != age_a:
            assert not f.is_complete(age_b, slice(0, 1))
            f.store(age_b, 0, 222)
            assert f.fetch(age_b, 0).item() == 222
        assert f.fetch(age_a, 0).item() == 111
