"""Tests for online LLS adaptation: live replans and the policy driver.

Covers the three layers of the online path separately so failures
localize: the :class:`AdaptationDriver` decision step (pure, no
threads), :meth:`ExecutionNode.request_replan` mid-run swaps (the
epoch/age-boundary machinery), and the end-to-end ``adapt=`` loop on a
real workload.  The hypothesis test is the determinism acceptance
criterion: a swap injected at an *arbitrary* point in the run must
leave the results byte-identical to the fine-grained run.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AdaptationConfig,
    AdaptationDriver,
    ExecutionNode,
    FusionDecision,
    GranularityDecision,
    Instrumentation,
    KernelStats,
    ProgramHandle,
    delta_stats,
    run_program,
)
from repro.obs import MetricsRegistry, Tracer
from repro.workloads import (
    build_kmeans,
    build_mulsum,
    expected_series,
    kmeans_baseline,
)


def _spin_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0)
    return True


def _assert_mulsum(sink, ages):
    expected = expected_series(ages)
    assert sorted(sink) == list(range(ages))
    for age in expected:
        assert np.array_equal(sink[age][0], expected[age][0])
        assert np.array_equal(sink[age][1], expected[age][1])


def _hot(instr, kernel, instances=200, dispatch_us=40.0, kernel_us=10.0):
    for _ in range(instances):
        instr.record(kernel, dispatch_us * 1e-6, kernel_us * 1e-6)


class TestDeltaStats:
    def test_none_prev_passes_through(self):
        instr = Instrumentation()
        _hot(instr, "assign", instances=10)
        delta = delta_stats(None, instr.stats())
        assert delta["assign"].instances == 10

    def test_interval_delta(self):
        instr = Instrumentation()
        _hot(instr, "assign", instances=10, dispatch_us=40.0)
        prev = instr.stats()
        _hot(instr, "assign", instances=5, dispatch_us=2.0, kernel_us=98.0)
        delta = delta_stats(prev, instr.stats())
        assert delta["assign"].instances == 5
        # the delta reflects only the (cheap-dispatch) second interval
        assert delta["assign"].dispatch_ratio < 0.25

    def test_idle_kernels_dropped(self):
        instr = Instrumentation()
        _hot(instr, "assign", instances=10)
        snap = instr.stats()
        assert delta_stats(snap, snap) == {}


class TestAdaptationDriver:
    """poll_once is the whole decision step — drive it synchronously."""

    def _driver(self, program, instr, applied, **cfg):
        config = AdaptationConfig(
            ratio_target=0.25, min_instances=10, **cfg
        )
        return AdaptationDriver(
            config,
            stats_fn=instr.stats,
            program_fn=lambda: program,
            apply_fn=lambda ds: applied.append(list(ds)) or True,
        )

    def test_poll_submits_hot_kernel(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        instr = Instrumentation()
        applied = []
        driver = self._driver(program, instr, applied)
        assert driver.poll_once() == []  # nothing executed yet
        _hot(instr, "assign")
        fresh = driver.poll_once()
        assert [d.kernel for d in fresh] == ["assign"]
        assert applied == [fresh]
        assert driver.rounds == 1

    def test_touched_kernels_left_alone(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        instr = Instrumentation()
        applied = []
        driver = self._driver(program, instr, applied)
        _hot(instr, "assign")
        driver.poll_once()
        _hot(instr, "assign")  # still hot in the next interval
        assert driver.poll_once() == []
        assert driver.rounds == 1

    def test_max_rounds_bounds_swaps(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        instr = Instrumentation()
        applied = []
        driver = self._driver(program, instr, applied, max_rounds=0)
        _hot(instr, "assign")
        assert driver.poll_once() == []
        assert applied == []

    def test_rejected_apply_not_counted(self):
        program, _ = build_kmeans(n=40, k=4, iterations=2,
                                  granularity="pair")
        instr = Instrumentation()
        config = AdaptationConfig(ratio_target=0.25, min_instances=10)
        driver = AdaptationDriver(
            config,
            stats_fn=instr.stats,
            program_fn=lambda: program,
            apply_fn=lambda ds: False,  # node already wound down
        )
        _hot(instr, "assign")
        assert driver.poll_once() == []
        assert driver.rounds == 0 and driver.decisions == []

    def test_needs_node_or_callables(self):
        with pytest.raises(TypeError):
            AdaptationDriver(AdaptationConfig())

    def test_stop_idempotent_without_start(self):
        program, _ = build_mulsum()
        driver = AdaptationDriver(
            node=None,
            stats_fn=dict,
            program_fn=lambda: program,
            apply_fn=lambda ds: True,
        )
        driver.stop()
        driver.stop()


class TestLiveReplan:
    """request_replan mid-run: the epoch swap machinery itself."""

    AGES = 12

    def _run_with_swap(self, decisions, trigger, backend="threads",
                       workers=2, **node_kw):
        program, sink = build_mulsum()
        node = ExecutionNode(program, workers, max_age=self.AGES - 1,
                             backend=backend, **node_kw)
        node.start()
        _spin_until(
            lambda: node.instrumentation.total_instances() >= trigger
        )
        node.request_replan(decisions)
        result = node.join(timeout=60)
        return node, sink, result

    def test_mid_run_coarsen_is_value_preserving(self):
        node, sink, result = self._run_with_swap(
            [GranularityDecision("mul2", "x", 4)], trigger=20
        )
        _assert_mulsum(sink, self.AGES)
        assert len(result.replans) == 1
        rec = result.replans[0]
        assert rec.decisions == (GranularityDecision("mul2", "x", 4),)
        assert rec.epoch >= 1 and not rec.remote
        # the handle now resolves two program versions
        assert len(node.handle.versions()) == 2
        assert "mul2" in node.handle.version_for_age(0).kernels
        assert "mul2" in node.handle.version_for_age(rec.epoch).kernels

    def test_mid_run_fuse_is_value_preserving(self):
        node, sink, result = self._run_with_swap(
            [FusionDecision("mul2", "plus5")], trigger=20
        )
        _assert_mulsum(sink, self.AGES)
        assert len(result.replans) == 1
        rec = result.replans[0]
        swapped = node.handle.version_for_age(rec.epoch)
        assert "mul2+plus5" in swapped.kernels
        assert "mul2" not in swapped.kernels

    def test_source_kernel_decisions_skipped(self):
        """Decisions touching a source kernel are skipped, not applied:
        fusing the source away would halt self-advance."""
        program, sink = build_mulsum()
        node = ExecutionNode(program, 2, max_age=3)
        node.start()
        node.request_replan([FusionDecision("init", "mul2")])
        result = node.join(timeout=60)
        _assert_mulsum(sink, 4)
        assert result.replans == []  # nothing applied -> no record
        assert len(node.handle.versions()) == 1

    def test_replan_after_join_rejected(self):
        program, _ = build_mulsum()
        node = ExecutionNode(program, 2, max_age=2)
        node.start()
        node.join(timeout=60)
        ok = node.request_replan([GranularityDecision("mul2", "x", 2)])
        assert ok is False

    def test_replan_emits_metrics_and_span(self):
        metrics = MetricsRegistry()
        tracer = Tracer(mode="full")
        node, sink, result = self._run_with_swap(
            [GranularityDecision("mul2", "x", 4)], trigger=20,
            metrics=metrics, tracer=tracer,
        )
        _assert_mulsum(sink, self.AGES)
        assert metrics.counter("adapt.replans").value == 1
        assert metrics.counter("adapt.coarsen").value == 1
        assert metrics.gauge("adapt.epoch").value == result.replans[0].epoch
        spans = [e for e in tracer.events()
                 if e.get("name") == "replan" and e.get("cat") == "adapt"]
        assert len(spans) == 1
        assert spans[0]["args"]["epoch"] == result.replans[0].epoch

    def test_mid_run_swap_on_process_backend(self):
        """Worker processes rebuild the swapped program from shipped
        decisions (mulsum lacks declared shapes, so use K-means)."""
        program, sink = build_kmeans(n=200, k=10, iterations=4,
                                     granularity="point")
        node = ExecutionNode(program, 2, backend="processes")
        node.start()
        _spin_until(
            lambda: node.instrumentation.total_instances() >= 50
        )
        node.request_replan([GranularityDecision("assign", "x", 8)])
        result = node.join(timeout=120)
        base = kmeans_baseline(n=200, k=10, iterations=4)
        for age in base.history:
            assert np.array_equal(sink.history[age], base.history[age])
        assert len(result.replans) == 1

    @given(
        trigger=st.integers(min_value=1, max_value=100),
        factor=st.sampled_from([2, 4, 8]),
        fuse=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_swap_at_arbitrary_age_boundary_is_deterministic(
        self, trigger, factor, fuse
    ):
        """Acceptance: wherever in the run the swap lands (any age
        boundary the analyzer picks for the epoch), results match the
        fine-grained reference byte for byte."""
        decisions = (
            [FusionDecision("mul2", "plus5")] if fuse
            else [GranularityDecision("mul2", "x", factor)]
        )
        _node, sink, result = self._run_with_swap(decisions, trigger)
        _assert_mulsum(sink, self.AGES)
        for rec in result.replans:
            assert 0 <= rec.epoch <= self.AGES


class TestProgramHandle:
    def test_version_resolution(self):
        program, _ = build_mulsum()
        coarse = GranularityDecision("mul2", "x", 4).apply(program)
        handle = ProgramHandle(program)
        assert handle.epoch == 0 and handle.current is program
        handle.register(3, coarse)
        assert handle.current is coarse and handle.epoch == 3
        assert handle.version_for_age(2) is program
        assert handle.version_for_age(3) is coarse
        assert handle.version_for_age(None) is program
        assert handle.kernel_for_age("mul2", 2) is program.kernels["mul2"]
        assert handle.kernel_for_age("mul2", 7) is coarse.kernels["mul2"]

    def test_epoch_monotonic(self):
        program, _ = build_mulsum()
        coarse = GranularityDecision("mul2", "x", 2).apply(program)
        handle = ProgramHandle(program)
        handle.register(5, coarse)
        later = GranularityDecision("plus5", "x", 2).apply(coarse)
        handle.register(3, later)  # clamped up to 5
        assert handle.epoch == 5
        assert handle.version_for_age(5) is later


class TestEndToEnd:
    """The full loop: run_program(adapt=...) on a real workload."""

    def test_adaptive_kmeans_matches_baseline(self):
        program, sink = build_kmeans(n=400, k=20, iterations=6,
                                     granularity="point")
        cfg = AdaptationConfig(interval=0.02, min_instances=32)
        result = run_program(program, workers=2, timeout=120, adapt=cfg)
        base = kmeans_baseline(n=400, k=20, iterations=6)
        assert sink.history.keys() == base.history.keys()
        for age in base.history:
            assert np.array_equal(sink.history[age], base.history[age])
        for rec in result.replans:
            assert rec.decisions and not rec.remote

    def test_adaptive_mulsum_matches_reference(self):
        program, sink = build_mulsum()
        cfg = AdaptationConfig(interval=0.01, min_instances=8,
                               ratio_target=0.01)
        run_program(program, workers=2, max_age=19, timeout=120,
                    adapt=cfg)
        _assert_mulsum(sink, 20)
