"""Unit tests for kernel definitions and instance machinery."""

import pytest

from repro.core import (
    AgeExpr,
    DefinitionError,
    Dim,
    FetchSpec,
    KernelContext,
    KernelDef,
    KernelInstance,
    StoreSpec,
    make_kernel,
)


class TestAgeExpr:
    def test_var_resolve(self):
        assert AgeExpr.var(0).resolve(3) == 3
        assert AgeExpr.var(1).resolve(3) == 4
        assert AgeExpr.var(-1).resolve(3) == 2

    def test_literal_resolve_ignores_kernel_age(self):
        assert AgeExpr.const(0).resolve(7) == 0
        assert AgeExpr.const(2).resolve(None) == 2

    def test_var_resolve_without_age_raises(self):
        with pytest.raises(DefinitionError):
            AgeExpr.var(0).resolve(None)

    def test_solve_inverts_resolve(self):
        for offset in (-2, 0, 3):
            e = AgeExpr.var(offset)
            for kernel_age in range(5):
                field_age = e.resolve(kernel_age)
                if field_age >= 0:
                    assert e.solve(field_age) == kernel_age

    def test_solve_negative_is_none(self):
        assert AgeExpr.var(2).solve(1) is None

    def test_literal_solve_is_none(self):
        assert AgeExpr.const(0).solve(0) is None
        assert AgeExpr.const(0).matches_literal(0)
        assert not AgeExpr.const(0).matches_literal(1)

    def test_str(self):
        assert str(AgeExpr.var(0)) == "a"
        assert str(AgeExpr.var(1)) == "a+1"
        assert str(AgeExpr.var(-2)) == "a-2"
        assert str(AgeExpr.const(0)) == "0"


class TestDim:
    def test_all(self):
        d = Dim.all()
        assert d.count(10) == 1
        assert d.region(0, 10) == slice(0, 10)

    def test_element(self):
        d = Dim.of("x")
        assert d.count(5) == 5
        assert d.region(3, 5) == slice(3, 4)

    def test_block(self):
        d = Dim.of("x", 8)
        assert d.count(20) == 3  # ceil(20/8)
        assert d.region(2, 20) == slice(16, 20)  # ragged tail clamps

    def test_zero_extent(self):
        assert Dim.of("x").count(0) == 0

    def test_candidates_cover_region(self):
        d = Dim.of("x", 4)
        cand = d.candidates(slice(5, 9), 16)
        assert list(cand) == [1, 2]

    def test_candidates_clamped_to_extent(self):
        d = Dim.of("x", 4)
        assert list(d.candidates(slice(0, 100), 8)) == [0, 1]

    def test_invalid_block(self):
        with pytest.raises(DefinitionError):
            Dim.of("x", 0)


class TestFetchSpec:
    def test_whole_field(self):
        f = FetchSpec("m", "m_data")
        assert f.whole_field()
        assert f.vars() == ()

    def test_counts_min_across_fetches(self):
        k = KernelDef(
            "k", lambda ctx: None, has_age=True, index_vars=("x",),
            fetches=(
                FetchSpec("a", "fa", dims=(Dim.of("x"),)),
                FetchSpec("b", "fb", dims=(Dim.of("x", 2),)),
            ),
        )
        extents = {"fa": (10,), "fb": (10,)}
        counts = k.index_counts(lambda f: extents[f])
        assert counts["x"] == 5  # min(10, ceil(10/2))

    def test_region(self):
        f = FetchSpec("b", "f", dims=(Dim.of("y", 8), Dim.all()))
        assert f.region({"y": 1}, (32, 5)) == (slice(8, 16), slice(0, 5))


class TestStoreSpec:
    def test_emit_key_defaults_to_field(self):
        assert StoreSpec("out").emit_key == "out"
        assert StoreSpec("out", key="k").emit_key == "k"

    def test_region_from_value_shape(self):
        s = StoreSpec("f", dims=(Dim.of("x", 8), Dim.all()))
        region = s.region({"x": 2}, (5, 7))
        assert region == (slice(16, 21), slice(0, 7))

    def test_region_arity_mismatch(self):
        s = StoreSpec("f", dims=(Dim.of("x"),))
        with pytest.raises(DefinitionError):
            s.region({"x": 0}, (2, 2))


class TestKernelDefValidation:
    def test_duplicate_fetch_param(self):
        with pytest.raises(DefinitionError):
            KernelDef(
                "k", lambda ctx: None, has_age=True,
                fetches=(FetchSpec("v", "a"), FetchSpec("v", "b")),
            )

    def test_undeclared_index_var_in_fetch(self):
        with pytest.raises(DefinitionError):
            KernelDef(
                "k", lambda ctx: None, has_age=True,
                fetches=(FetchSpec("v", "a", dims=(Dim.of("x"),)),),
            )

    def test_age_fetch_without_age_decl(self):
        with pytest.raises(DefinitionError):
            KernelDef(
                "k", lambda ctx: None,
                fetches=(FetchSpec("v", "a"),),  # AgeExpr.var default
            )

    def test_unbound_index_var(self):
        with pytest.raises(DefinitionError):
            KernelDef(
                "k", lambda ctx: None, has_age=True, index_vars=("x",),
                fetches=(FetchSpec("v", "a"),),
            )

    def test_domain_binds_index_var(self):
        k = KernelDef(
            "k", lambda ctx: None, has_age=True, index_vars=("x",),
            domain={"x": 4},
        )
        assert k.index_counts(lambda f: ())["x"] == 4

    def test_duplicate_store_key(self):
        with pytest.raises(DefinitionError):
            KernelDef(
                "k", lambda ctx: None, has_age=True,
                stores=(StoreSpec("f"), StoreSpec("f")),
            )

    def test_distinct_keys_same_field_ok(self):
        k = KernelDef(
            "k", lambda ctx: None, has_age=True,
            stores=(StoreSpec("f", key="a"), StoreSpec("f", key="b")),
        )
        assert {s.emit_key for s in k.stores} == {"a", "b"}

    def test_source_and_run_once(self):
        init = KernelDef("init", lambda ctx: None)
        assert init.is_source and init.run_once
        src = KernelDef("read", lambda ctx: None, has_age=True)
        assert src.is_source and not src.run_once
        consumer = KernelDef(
            "c", lambda ctx: None, has_age=True,
            fetches=(FetchSpec("v", "f"),),
        )
        assert not consumer.is_source

    def test_fetched_stored_fields_dedup(self):
        k = KernelDef(
            "k", lambda ctx: None, has_age=True, index_vars=("x",),
            fetches=(
                FetchSpec("a", "f", dims=(Dim.of("x"),)),
                FetchSpec("b", "f"),
            ),
            stores=(StoreSpec("g", key="s1"),),
        )
        assert k.fetched_fields() == ("f",)
        assert k.stored_fields() == ("g",)

    def test_describe_mentions_statements(self):
        k = KernelDef(
            "mul2", lambda ctx: None, has_age=True, index_vars=("x",),
            fetches=(FetchSpec("value", "m_data", dims=(Dim.of("x"),)),),
            stores=(StoreSpec("p_data", dims=(Dim.of("x"),)),),
        )
        text = k.describe()
        assert "fetch value = m_data(a)[x]" in text
        assert "store p_data(a)[x]" in text


class TestKernelInstance:
    def test_key_uniqueness(self):
        k = KernelDef("k", lambda ctx: None, has_age=True,
                      index_vars=("x",), domain={"x": 3})
        a = KernelInstance(k, 0, (1,))
        b = KernelInstance(k, 0, (2,))
        c = KernelInstance(k, 1, (1,))
        assert len({a.key, b.key, c.key}) == 3

    def test_index_map(self):
        k = KernelDef("k", lambda ctx: None, has_age=True,
                      index_vars=("x", "y"), domain={"x": 2, "y": 2})
        inst = KernelInstance(k, 0, (1, 0))
        assert inst.index_map() == {"x": 1, "y": 0}

    def test_str(self):
        k = KernelDef("k", lambda ctx: None, has_age=True,
                      index_vars=("x",), domain={"x": 9})
        assert str(KernelInstance(k, 2, (5,))) == "k(age=2, x=5)"


class TestKernelContext:
    def test_emit_and_read(self):
        ctx = KernelContext(age=1, fetched={"v": 10})
        ctx.emit("out", 20)
        assert ctx.emitted == {"out": 20}
        assert ctx["v"] == 10

    def test_double_emit_raises(self):
        ctx = KernelContext()
        ctx.emit("out", 1)
        with pytest.raises(DefinitionError):
            ctx.emit("out", 2)

    def test_local_helper(self):
        ctx = KernelContext()
        lf = ctx.local("int32", 1)
        lf.put(5, 0)
        assert lf.data.tolist() == [5]


class TestMakeKernel:
    def test_decorator(self):
        @make_kernel(
            "mul2", age=True, index=["x"],
            fetches=[FetchSpec("value", "m", dims=(Dim.of("x"),),
                               scalar=True)],
            stores=[StoreSpec("p", dims=(Dim.of("x"),))],
        )
        def mul2(ctx):
            ctx.emit("p", ctx["value"] * 2)

        assert isinstance(mul2, KernelDef)
        assert mul2.name == "mul2"
        ctx = KernelContext(age=0, index={"x": 0}, fetched={"value": 21})
        mul2.body(ctx)
        assert ctx.emitted["p"] == 42
