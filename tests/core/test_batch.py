"""Batched dispatch + vectorized kernels: byte-identity and mechanics.

The fast path has two levers — the ready queue surfacing *runs* of
same-kernel/same-age instances (``ExecutionNode(batch=N)``) and the
vectorizer replacing per-instance bodies with one stacked NumPy call
(``vectorize_program``).  Both must be invisible in the results: every
test here pins batched/vectorized output against the scalar ground
truth (``expected_series``, ``mjpeg_baseline``, ``kmeans_baseline``)
byte for byte, across backends, the cluster layer, and mid-run replans.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BatchKernelContext,
    Dim,
    ExecutionNode,
    FetchSpec,
    GranularityDecision,
    KernelDef,
    Program,
    ReadyQueue,
    StoreSpec,
    VectorizeFallback,
    run_program,
    tag_vectorizable,
    vectorize_program,
)
from repro.core.errors import (
    DefinitionError,
    RuntimeStateError,
    WriteOnceViolation,
)
from repro.core.kernels import KernelContext, KernelInstance
from repro.dist import Cluster
from repro.obs import MetricsRegistry, flatten
from repro.workloads import (
    build_kmeans,
    build_mjpeg,
    build_mulsum,
    expected_series,
    kmeans_baseline,
)
from repro.workloads.mjpeg import MJPEGConfig, mjpeg_baseline


def _spin_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0)
    return True


def _assert_mulsum(sink, ages, modulo=None):
    expected = expected_series(ages, modulo=modulo)
    assert sorted(sink) == list(range(ages))
    for age in expected:
        assert np.array_equal(sink[age][0], expected[age][0])
        assert np.array_equal(sink[age][1], expected[age][1])


def _noop(ctx):  # pragma: no cover - never dispatched
    pass


def _inst(kernel, age, index=()):
    return KernelInstance(kernel, age=age, index=index)


class TestPopBatch:
    """Batch formation: same kernel definition, same age, heap order."""

    def _kernels(self):
        a = KernelDef(name="a", body=_noop, has_age=True,
                      index_vars=("x",), domain={"x": 8})
        b = KernelDef(name="b", body=_noop, has_age=True,
                      index_vars=("x",), domain={"x": 8})
        return a, b

    def test_drains_same_kernel_same_age_run(self):
        a, _ = self._kernels()
        q = ReadyQueue()
        for i in range(5):
            q.push(_inst(a, 0, (i,)))
        batch, _wait = q.pop_batch(8)
        assert [i.index for i in batch] == [(0,), (1,), (2,), (3,), (4,)]
        assert q.pops == 5

    def test_respects_max_n(self):
        a, _ = self._kernels()
        q = ReadyQueue()
        for i in range(5):
            q.push(_inst(a, 0, (i,)))
        batch, _ = q.pop_batch(2)
        assert len(batch) == 2
        batch2, _ = q.pop_batch(2)
        assert len(batch2) == 2
        assert batch2[0].index == (2,)

    def test_stops_at_kernel_change(self):
        a, b = self._kernels()
        q = ReadyQueue()
        q.push(_inst(a, 0, (0,)))
        q.push(_inst(a, 0, (1,)))
        q.push(_inst(b, 0, (0,)))
        batch, _ = q.pop_batch(8)
        assert len(batch) == 2 and all(i.kernel is a for i in batch)

    def test_stops_at_age_change(self):
        a, _ = self._kernels()
        q = ReadyQueue()
        q.push(_inst(a, 0, (0,)))
        q.push(_inst(a, 1, (0,)))
        batch, _ = q.pop_batch(8)
        assert len(batch) == 1 and batch[0].age == 0

    def test_never_consumes_sentinel(self):
        a, _ = self._kernels()
        q = ReadyQueue()
        q.push(_inst(a, 0, (0,)))
        q.push_sentinel()
        batch, _ = q.pop_batch(8)
        assert len(batch) == 1
        batch2, _ = q.pop_batch(8)
        assert batch2 is None  # sentinel -> worker exit signal

    def test_identity_not_name_bounds_the_run(self):
        """Two kernel *definitions* with the same name never batch
        together — the epoch-safety property (post-replan versions are
        fresh KernelDef objects)."""
        a1 = KernelDef(name="a", body=_noop, has_age=True,
                       index_vars=("x",), domain={"x": 8})
        a2 = KernelDef(name="a", body=_noop, has_age=True,
                       index_vars=("x",), domain={"x": 8})
        q = ReadyQueue()
        q.push(_inst(a1, 0, (0,)))
        q.push(_inst(a2, 0, (1,)))
        batch, _ = q.pop_batch(8)
        assert len(batch) == 1 and batch[0].kernel is a1

    def test_batch_size_validated(self):
        program, _ = build_mulsum()
        with pytest.raises(RuntimeStateError):
            ExecutionNode(program, 1, max_age=1, batch=0)


class TestVectorizer:
    """The pattern table and build-time matching."""

    def test_unknown_pattern_fails_at_build(self):
        def body(ctx):
            ctx.emit("out", 1)

        tag_vectorizable(body, "no_such_pattern")
        k = KernelDef(name="k", body=body, has_age=True,
                      index_vars=("x",),
                      fetches=(FetchSpec("v", "f", dims=(Dim.of("x"),)),),
                      stores=(StoreSpec("f", dims=(Dim.of("x"),),
                                        key="out"),))
        from repro.core import FieldDef

        program = Program.build(
            fields=[FieldDef("f", "int64", 1, aging=True, shape=(4,))],
            kernels=[k], name="p")
        with pytest.raises(DefinitionError):
            vectorize_program(program)

    def test_untagged_program_is_noop(self):
        def body(ctx):
            ctx.emit("out", int(ctx.fetched["v"]) + 1)

        from repro.core import FieldDef

        k = KernelDef(name="k", body=body, has_age=True,
                      index_vars=("x",),
                      fetches=(FetchSpec("v", "f", dims=(Dim.of("x"),)),),
                      stores=(StoreSpec("f", dims=(Dim.of("x"),),
                                        key="out"),))
        program = Program.build(
            fields=[FieldDef("f", "int64", 1, aging=True, shape=(4,))],
            kernels=[k], name="p")
        assert vectorize_program(program) == []
        assert all(kd.batch_body is None
                   for kd in program.kernels.values())

    def test_workload_builders_attach_batch_bodies(self):
        program, _ = build_mulsum()
        assert program.kernels["mul2"].batch_body is not None
        assert program.kernels["plus5"].batch_body is not None
        assert program.kernels["init"].batch_body is None
        mj, _ = build_mjpeg(config=MJPEGConfig(96, 64, 2))
        for name in ("ydct", "udct", "vdct"):
            assert mj.kernels[name].batch_body is not None
        km, _ = build_kmeans(n=50, k=4, iterations=2)
        assert km.kernels["assign"].batch_body is not None

    def test_vectorize_false_leaves_program_scalar(self):
        program, _ = build_mjpeg(config=MJPEGConfig(96, 64, 2),
                                 vectorize=False)
        assert all(k.batch_body is None
                   for k in program.kernels.values())

    def test_batch_context_double_emit_rejected(self):
        bctx = BatchKernelContext(0, [{"x": 0}], {"v": np.zeros(1)})
        bctx.emit("out", np.zeros(1))
        with pytest.raises(DefinitionError):
            bctx.emit("out", np.zeros(1))

    def test_fallback_reverts_batch_to_scalar_path(self):
        """A batch_body raising VectorizeFallback re-runs through the
        scalar body — results unchanged, run completes."""
        program, sink = build_mulsum()

        def always_fall_back(bctx):
            raise VectorizeFallback

        program.kernels["mul2"].batch_body = always_fall_back
        run_program(program, workers=2, max_age=4, batch=8)
        _assert_mulsum(sink, 5)


class TestByteIdentityThreads:
    """batched + vectorized ≡ per-instance scalar, threads backend."""

    @given(batch=st.integers(min_value=1, max_value=64),
           workers=st.integers(min_value=1, max_value=4),
           vectorize=st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_mulsum_series_any_batch_size(self, batch, workers,
                                          vectorize):
        program, sink = build_mulsum(vectorize=vectorize)
        run_program(program, workers=workers, max_age=4, batch=batch)
        _assert_mulsum(sink, 5)

    @given(batch=st.sampled_from([2, 7, 16, 64]),
           vectorize=st.booleans())
    @settings(max_examples=6, deadline=None)
    def test_mjpeg_stream_bytes(self, batch, vectorize):
        cfg = MJPEGConfig(width=96, height=64, frames=4)
        base = mjpeg_baseline(config=cfg)
        program, sink = build_mjpeg(config=cfg, vectorize=vectorize)
        run_program(program, workers=4, batch=batch)
        assert sink.stream() == base

    @pytest.mark.parametrize("granularity", ["pair", "point"])
    def test_kmeans_trajectory(self, granularity):
        base = kmeans_baseline(n=150, k=8, iterations=3)
        program, sink = build_kmeans(n=150, k=8, iterations=3,
                                     granularity=granularity)
        run_program(program, workers=4, batch=16)
        for age in base.history:
            assert np.array_equal(sink.history[age], base.history[age])

    def test_dct_pattern_guards_block_shape(self):
        """The dct_quant_8x8 batch body refuses non-8x8 regions with
        VectorizeFallback rather than producing wrong bytes."""
        program, _ = build_mjpeg(config=MJPEGConfig(96, 64, 1))
        batch_body = program.kernels["ydct"].batch_body
        assert batch_body is not None
        bctx = BatchKernelContext(
            0, [{"by": 0, "bx": 0}],
            {"block": np.zeros((1, 4, 4), dtype=np.uint8)})
        with pytest.raises(VectorizeFallback):
            batch_body(bctx)


class TestByteIdentityProcesses:
    """Same guarantees across the one-IPC-per-batch process path."""

    def test_mjpeg_stream_bytes(self):
        cfg = MJPEGConfig(width=96, height=64, frames=4)
        base = mjpeg_baseline(config=cfg)
        program, sink = build_mjpeg(config=cfg)
        run_program(program, workers=2, backend="processes", batch=16)
        assert sink.stream() == base

    def test_mjpeg_scalar_fallback(self):
        cfg = MJPEGConfig(width=96, height=64, frames=3)
        base = mjpeg_baseline(config=cfg)
        program, sink = build_mjpeg(config=cfg, vectorize=False)
        run_program(program, workers=2, backend="processes", batch=16)
        assert sink.stream() == base

    @pytest.mark.parametrize("granularity", ["pair", "point"])
    def test_kmeans_trajectory(self, granularity):
        base = kmeans_baseline(n=150, k=8, iterations=3)
        program, sink = build_kmeans(n=150, k=8, iterations=3,
                                     granularity=granularity)
        run_program(program, workers=2, backend="processes", batch=16)
        for age in base.history:
            assert np.array_equal(sink.history[age], base.history[age])

    def test_worker_body_error_names_failing_instance(self):
        from repro.core.errors import KernelBodyError

        program, _ = build_kmeans(n=64, k=4, iterations=2,
                                  vectorize=False)

        def bomb(ctx):
            if ctx.index.get("x") == 13 and ctx.age == 1:
                raise ValueError("boom")
            ctx.emit("distances", 0.0)

        program.kernels["assign"].body = bomb
        with pytest.raises(KernelBodyError):
            run_program(program, workers=2, backend="processes",
                        batch=16, timeout=60)


class TestByteIdentityCluster:
    """Batched dispatch through the distributed layer."""

    def test_mulsum_on_two_nodes(self):
        program, sink = build_mulsum()
        result = Cluster(program, {"n0": 2, "n1": 2}).run(
            max_age=4, batch=8, timeout=120
        )
        assert result.reason == "idle"
        _assert_mulsum(sink, 5)

    def test_kmeans_on_two_nodes(self):
        base = kmeans_baseline(n=120, k=8, iterations=3)
        program, sink = build_kmeans(n=120, k=8, iterations=3)
        result = Cluster(program, {"n0": 2, "n1": 2}).run(
            batch=16, timeout=120
        )
        assert result.reason == "idle"
        for age in base.history:
            assert np.array_equal(sink.history[age], base.history[age])


class TestReplanInteraction:
    """Epoch swaps land on batch boundaries; results stay identical."""

    AGES = 12

    def test_mid_run_coarsen_with_batching(self):
        program, sink = build_mulsum()
        node = ExecutionNode(program, 2, max_age=self.AGES - 1, batch=16)
        node.start()
        _spin_until(
            lambda: node.instrumentation.total_instances() >= 20
        )
        node.request_replan([GranularityDecision("mul2", "x", 4)])
        result = node.join(timeout=60)
        _assert_mulsum(sink, self.AGES)
        if result.replans:
            # Post-swap kernel defs are fresh objects without a
            # batch_body — the vectorizer reverts to scalar, and batch
            # formation by definition identity keeps epochs unmixed.
            epoch = result.replans[0].epoch
            swapped = node.handle.version_for_age(epoch)
            assert swapped.kernels["mul2"].batch_body is None

    def test_mid_run_swap_on_process_backend_batched(self):
        program, sink = build_kmeans(n=200, k=10, iterations=4,
                                     granularity="point")
        node = ExecutionNode(program, 2, backend="processes", batch=16)
        node.start()
        _spin_until(
            lambda: node.instrumentation.total_instances() >= 50
        )
        node.request_replan([GranularityDecision("assign", "x", 8)])
        result = node.join(timeout=120)
        base = kmeans_baseline(n=200, k=10, iterations=4)
        for age in base.history:
            assert np.array_equal(sink.history[age], base.history[age])
        assert len(result.replans) == 1

    @given(trigger=st.integers(min_value=1, max_value=80),
           batch=st.sampled_from([2, 8, 32]))
    @settings(max_examples=8, deadline=None)
    def test_swap_at_arbitrary_point_stays_identical(self, trigger,
                                                     batch):
        program, sink = build_mulsum()
        node = ExecutionNode(program, 2, max_age=self.AGES - 1,
                             batch=batch)
        node.start()
        _spin_until(
            lambda: node.instrumentation.total_instances() >= trigger
        )
        node.request_replan([GranularityDecision("mul2", "x", 4)])
        node.join(timeout=60)
        _assert_mulsum(sink, self.AGES)


class TestRecoverCommitRace:
    """Recovery dispatches a dead node's in-flight work twice (direct
    re-enqueue + replay-driven analyzer rediscovery).  When both copies
    run concurrently, the loser passes the completeness pre-check and
    then loses the write-once commit race — a recover node must treat
    that exactly like the already-complete skip (the winner wrote the
    same bytes), on both the scalar and the vectorized store path."""

    @staticmethod
    def _race_first_store(node, field_name):
        """Make the first store to ``field_name`` lose the commit race:
        a shadow commit of the same bytes lands between the caller's
        completeness check and its own store."""
        field = node.fields[field_name]
        real_store = field.store
        fired = []

        def racing_store(age, index, value):
            if not fired:
                fired.append(True)
                real_store(age, index, value)  # the duplicate's commit
            return real_store(age, index, value)

        field.store = racing_store
        return fired

    @pytest.mark.parametrize("batch", [1, 4])
    def test_recover_node_tolerates_losing_the_race(self, batch):
        sink = {}
        program, _ = build_mulsum(sink=sink)
        node = ExecutionNode(program, 2, max_age=2, recover=True,
                             batch=batch)
        fired = self._race_first_store(node, "p_data")
        node.run(timeout=60)
        assert fired  # the race actually happened
        _assert_mulsum(sink, 3)

    def test_non_recover_node_still_raises(self):
        program, _ = build_mulsum()
        node = ExecutionNode(program, 2, max_age=2)
        fired = self._race_first_store(node, "p_data")
        with pytest.raises(WriteOnceViolation):
            node.run(timeout=60)
        assert fired


class TestHotPathGuards:
    """Satellite: metrics/trace guards and pooled contexts."""

    def test_disabled_registry_stays_empty(self):
        reg = MetricsRegistry(enabled=False)
        program, sink = build_mulsum()
        run_program(program, workers=2, max_age=3, metrics=reg,
                    batch=8)
        _assert_mulsum(sink, 4)
        flat = flatten(reg.snapshot())
        # Guarded hot-path instruments must have recorded nothing.
        assert flat["instances.executed"] == 0
        assert flat.get("ready.pops", 0) == 0
        assert flat.get("ready.wait_s.count", 0) == 0
        assert flat.get("exec.kernel_s.count", 0) == 0

    def test_default_registry_counts_instances_exactly(self):
        reg = MetricsRegistry()
        program, _ = build_mulsum()
        result = run_program(program, workers=2, max_age=3,
                             metrics=reg, batch=8)
        flat = flatten(reg.snapshot())
        executed = result.instrumentation.total_instances()
        assert flat["instances.executed"] == executed
        # Batched mode observes ready-wait once per *dispatch*.
        assert flat["ready.pops"] == executed
        assert 0 < flat["ready.wait_s.count"] <= executed

    def test_context_reset_clears_state(self):
        ctx = KernelContext(age=0, index={"x": 1}, fetched={"v": 1})
        ctx.emit("k", 2)
        ctx2 = ctx.reset(3, {"x": 9}, {"v": 5})
        assert ctx2 is ctx
        assert ctx.age == 3 and ctx.index == {"x": 9}
        assert ctx.fetched == {"v": 5}
        assert ctx.emitted == {} and ctx.outputs == []

    def test_telemetry_off_binds_no_timeline(self):
        # Zero-cost-off contract: with telemetry off (the default) the
        # node holds no timeline reference at all, so the hot-path
        # guards are a single ``is not None`` test.
        from repro.obs import TimelineRecorder

        program, sink = build_mulsum()
        result = run_program(program, workers=2, max_age=3, batch=8)
        assert result.telemetry is None
        node = ExecutionNode(program, 1)
        assert node._timeline is None
        # A disabled recorder binds to None exactly like no recorder.
        node = ExecutionNode(
            program, 1, timeline=TimelineRecorder(enabled=False)
        )
        assert node._timeline is None

    def test_disabled_timeline_never_called_on_hot_path(self):
        # Stronger than "records nothing": a disabled recorder must not
        # be *invoked* per instance.  Binding would keep a poisoned
        # recorder reachable; the guard must drop it.
        from repro.obs import TimelineRecorder

        class Poisoned(TimelineRecorder):
            def __init__(self):
                super().__init__(enabled=False)

            def span(self, *a, **kw):  # pragma: no cover - must not run
                raise AssertionError("hot path called a disabled timeline")

            begin = finish = discard = span

        program, sink = build_mulsum()
        node = ExecutionNode(program, 2, max_age=3, batch=8,
                             timeline=Poisoned())
        node.start()
        node.join()
        _assert_mulsum(sink, 4)

    def test_enabled_timeline_ignores_non_stream_frames(self):
        # Batch (non-stream) runs hit the span hooks, but no driver
        # ever begin()s a frame: the recorder must stay empty.
        from repro.obs import Telemetry

        tel = Telemetry()
        program, sink = build_mulsum()
        result = run_program(program, workers=2, max_age=3, batch=8,
                             telemetry=tel)
        _assert_mulsum(sink, 4)
        assert result.telemetry is tel
        assert tel.timeline.in_flight() == 0
        assert tel.timeline.sessions() == []
