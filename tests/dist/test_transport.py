"""Unit tests for the publish-subscribe transport."""

import pytest

from repro.core import TransportError
from repro.dist import InProcTransport


class TestPubSub:
    def test_delivery(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "nodeB", lambda m: got.append(m))
        n = t.publish("f", "nodeA", payload={"x": 1}, size=8)
        assert n == 1
        assert got[0].payload == {"x": 1}
        assert got[0].sender == "nodeA"

    def test_sender_excluded(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "nodeA", lambda m: got.append(m))
        assert t.publish("f", "nodeA", None) == 0
        assert got == []

    def test_multiple_subscribers(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "b", lambda m: got.append("b"))
        t.subscribe("f", "c", lambda m: got.append("c"))
        assert t.publish("f", "a", None) == 2
        assert got == ["b", "c"]

    def test_unsubscribe(self):
        t = InProcTransport()
        got = []
        unsub = t.subscribe("f", "b", lambda m: got.append(1))
        t.publish("f", "a", None)
        unsub()
        t.publish("f", "a", None)
        assert got == [1]

    def test_topics(self):
        t = InProcTransport()
        t.subscribe("x", "n", lambda m: None)
        assert t.topics() == ["x"]


class TestStats:
    def test_accounting(self):
        t = InProcTransport()
        t.subscribe("f", "b", lambda m: None)
        t.subscribe("f", "c", lambda m: None)
        t.publish("f", "a", None, size=100)
        assert t.stats.messages == 2
        assert t.stats.bytes == 200
        assert t.stats.per_topic["f"] == 2
        assert t.stats.per_link[("a", "b")] == 1
        assert t.stats.per_link[("a", "c")] == 1

    def test_latency_model(self):
        t = InProcTransport(latency_per_message_us=10.0,
                            latency_per_byte_ns=1.0)
        t.subscribe("f", "b", lambda m: None)
        t.publish("f", "a", None, size=1000)
        assert t.stats.simulated_latency_s == pytest.approx(
            10e-6 + 1000e-9
        )


class TestClose:
    def test_closed_rejects_operations(self):
        t = InProcTransport()
        t.close()
        with pytest.raises(TransportError):
            t.subscribe("f", "n", lambda m: None)
        with pytest.raises(TransportError):
            t.publish("f", "n", None)


class TestDeliveryErrors:
    """A failing subscriber must not corrupt accounting or wedge the
    publisher (satellite of the fault-tolerance work: a dying node's
    handler raises mid-broadcast)."""

    def test_failing_subscriber_does_not_stop_broadcast(self):
        t = InProcTransport()
        got = []

        def bad(msg):
            raise RuntimeError("subscriber died")

        t.subscribe("f", "n1", bad)
        t.subscribe("f", "n2", lambda m: got.append(m))
        n = t.publish("f", "n0", payload=1, size=10)
        assert n == 1  # only the successful delivery counts
        assert len(got) == 1

    def test_stats_count_only_successes(self):
        t = InProcTransport()
        t.subscribe("f", "n1", lambda m: (_ for _ in ()).throw(ValueError()))
        t.subscribe("f", "n2", lambda m: None)
        t.publish("f", "n0", payload=1, size=10)
        t.publish("f", "n0", payload=2, size=10)
        assert t.stats.messages == 2
        assert t.stats.bytes == 20
        assert t.stats.delivery_errors == 2
        assert t.stats.per_link[("n0", "n2")] == 2
        assert ("n0", "n1") not in t.stats.per_link

    def test_failure_details_recorded_and_bounded(self):
        t = InProcTransport()
        t.subscribe("f", "n1", lambda m: (_ for _ in ()).throw(ValueError("x")))
        for _ in range(InProcTransport.MAX_ERROR_DETAILS + 10):
            t.publish("f", "n0", payload=0)
        assert len(t.delivery_failures) == InProcTransport.MAX_ERROR_DETAILS
        topic, node, detail = t.delivery_failures[0]
        assert (topic, node) == ("f", "n1")
        assert "ValueError" in detail
        errors = t.stats.delivery_errors
        assert errors == InProcTransport.MAX_ERROR_DETAILS + 10

    def test_publisher_never_raises_on_subscriber_error(self):
        t = InProcTransport()
        t.subscribe("f", "n1", lambda m: (_ for _ in ()).throw(KeyError()))
        assert t.publish("f", "n0", payload=1) == 0


class TestControlTraffic:
    def test_control_skips_stats_and_log(self):
        t = InProcTransport()
        t.enable_log()
        got = []
        t.subscribe("hb", "n1", lambda m: got.append(m))
        n = t.publish("hb", "n0", payload="beat", control=True)
        assert n == 1
        assert len(got) == 1
        assert t.stats.messages == 0
        assert t.log_size() == 0


class TestEventLog:
    def test_replay_returns_logged_messages(self):
        t = InProcTransport()
        t.enable_log()
        t.subscribe("f", "n1", lambda m: None)
        t.publish("f", "n0", payload=1)
        t.publish("g", "n0", payload=2)
        assert t.log_size() == 2
        assert [m.payload for m in t.replay()] == [1, 2]
        assert [m.payload for m in t.replay({"g"})] == [2]

    def test_log_disabled_by_default(self):
        t = InProcTransport()
        t.publish("f", "n0", payload=1)
        assert t.log_size() == 0
        assert t.replay() == []

    def test_dropped_sender_still_logged(self):
        """The log models a durable broker: a partitioned node's events
        are retained for replay even though nobody received them."""
        t = InProcTransport()
        t.enable_log()
        got = []
        t.subscribe("f", "n1", lambda m: got.append(m))
        t.drop_from("n0")
        assert t.publish("f", "n0", payload=1) == 0
        assert got == []
        assert [m.payload for m in t.replay()] == [1]


class TestPartition:
    def test_drop_and_undrop(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "n1", lambda m: got.append(m.payload))
        t.drop_from("n0")
        assert t.dropped_senders() == {"n0"}
        t.publish("f", "n0", payload=1)
        t.publish("f", "n2", payload=2)
        t.undrop("n0")
        t.publish("f", "n0", payload=3)
        assert got == [2, 3]
        assert t.dropped_senders() == set()


class TestUnsubscribeNode:
    def test_removes_every_subscription(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "n1", lambda m: got.append(("f", m.payload)))
        t.subscribe("g", "n1", lambda m: got.append(("g", m.payload)))
        t.subscribe("f", "n2", lambda m: got.append(("n2", m.payload)))
        assert t.unsubscribe_node("n1") == 2
        t.publish("f", "n0", payload=1)
        t.publish("g", "n0", payload=2)
        assert got == [("n2", 1)]
        assert t.unsubscribe_node("n1") == 0
