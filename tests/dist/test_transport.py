"""Unit tests for the publish-subscribe transport."""

import pytest

from repro.core import TransportError
from repro.dist import InProcTransport


class TestPubSub:
    def test_delivery(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "nodeB", lambda m: got.append(m))
        n = t.publish("f", "nodeA", payload={"x": 1}, size=8)
        assert n == 1
        assert got[0].payload == {"x": 1}
        assert got[0].sender == "nodeA"

    def test_sender_excluded(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "nodeA", lambda m: got.append(m))
        assert t.publish("f", "nodeA", None) == 0
        assert got == []

    def test_multiple_subscribers(self):
        t = InProcTransport()
        got = []
        t.subscribe("f", "b", lambda m: got.append("b"))
        t.subscribe("f", "c", lambda m: got.append("c"))
        assert t.publish("f", "a", None) == 2
        assert got == ["b", "c"]

    def test_unsubscribe(self):
        t = InProcTransport()
        got = []
        unsub = t.subscribe("f", "b", lambda m: got.append(1))
        t.publish("f", "a", None)
        unsub()
        t.publish("f", "a", None)
        assert got == [1]

    def test_topics(self):
        t = InProcTransport()
        t.subscribe("x", "n", lambda m: None)
        assert t.topics() == ["x"]


class TestStats:
    def test_accounting(self):
        t = InProcTransport()
        t.subscribe("f", "b", lambda m: None)
        t.subscribe("f", "c", lambda m: None)
        t.publish("f", "a", None, size=100)
        assert t.stats.messages == 2
        assert t.stats.bytes == 200
        assert t.stats.per_topic["f"] == 2
        assert t.stats.per_link[("a", "b")] == 1
        assert t.stats.per_link[("a", "c")] == 1

    def test_latency_model(self):
        t = InProcTransport(latency_per_message_us=10.0,
                            latency_per_byte_ns=1.0)
        t.subscribe("f", "b", lambda m: None)
        t.publish("f", "a", None, size=1000)
        assert t.stats.simulated_latency_s == pytest.approx(
            10e-6 + 1000e-9
        )


class TestClose:
    def test_closed_rejects_operations(self):
        t = InProcTransport()
        t.close()
        with pytest.raises(TransportError):
            t.subscribe("f", "n", lambda m: None)
        with pytest.raises(TransportError):
            t.publish("f", "n", None)
