"""Integration tests for multi-node cluster execution."""

import numpy as np
import pytest

from repro.core import PartitionError
from repro.dist import Cluster, InProcTransport, LocalTopology, ProcessorSpec
from repro.media import synthetic_sequence
from repro.workloads import (
    MJPEGConfig,
    build_kmeans,
    build_mjpeg,
    build_mulsum,
    expected_series,
    kmeans_baseline,
    mjpeg_baseline,
)


class TestCorrectness:
    def test_mulsum_across_two_nodes(self):
        program, sink = build_mulsum()
        result = Cluster(program, {"a": 2, "b": 2}).run(
            max_age=3, timeout=60
        )
        assert result.reason == "idle"
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    def test_kmeans_across_three_nodes(self):
        program, sink = build_kmeans(n=60, k=5, iterations=3,
                                     granularity="point")
        result = Cluster(program, {"a": 2, "b": 1, "c": 1}).run(timeout=120)
        base = kmeans_baseline(n=60, k=5, iterations=3)
        for age in base.history:
            assert np.allclose(sink.history[age], base.history[age])

    def test_mjpeg_across_nodes_byte_identical(self):
        cfg = MJPEGConfig(width=64, height=64, frames=2)
        clip = synthetic_sequence(2, 64, 64, cfg.seed)
        program, sink = build_mjpeg(clip, cfg)
        Cluster(program, {"a": 2, "b": 2}).run(timeout=300)
        assert sink.stream() == mjpeg_baseline(clip, cfg)

    def test_wavefront_intra_across_nodes(self):
        """The intra wavefront's same-age stencil dependencies must
        propagate over the transport when `read` and `intra` land on
        different nodes — still bit-identical to the raster baseline."""
        from repro.dist.master import WorkloadAssignment
        from repro.dist.partition import Partition
        from repro.workloads import IntraConfig, build_intra, intra_baseline

        cfg = IntraConfig(width=64, height=48, frames=1)
        program, sink = build_intra(config=cfg)
        cluster = Cluster(program, {"a": 2, "b": 2})
        assignment = WorkloadAssignment(
            Partition(
                {"read": "a", "intra": "b", "quality": "a"},
                {"a": 2.0, "b": 2.0},
            ),
            "manual", 0,
        )
        result = cluster.run(assignment=assignment, timeout=120)
        assert result.reason == "idle"
        baseline = intra_baseline(config=cfg)
        assert np.array_equal(sink.recon[0], baseline[0])
        assert result.transport.messages > 0

    def test_single_node_cluster(self):
        program, sink = build_mulsum()
        result = Cluster(program, {"solo": 2}).run(max_age=1, timeout=60)
        assert result.reason == "idle"
        assert result.transport.messages == 0  # nothing crosses nodes

    def test_heterogeneous_topologies(self):
        program, sink = build_mulsum()
        nodes = {
            "big": LocalTopology("big", (ProcessorSpec("cpu", 4),)),
            "small": LocalTopology("small", (ProcessorSpec("cpu", 1),)),
        }
        result = Cluster(program, nodes).run(max_age=2, timeout=60)
        assert result.reason == "idle"
        expected = expected_series(3)
        assert np.array_equal(sink[2][0], expected[2][0])


class TestClusterAdaptation:
    def test_adaptive_kmeans_matches_baseline(self):
        """The master's adaptation driver broadcasts plans; every node
        swaps at the same epoch and results stay byte-identical."""
        from repro.core import AdaptationConfig

        program, sink = build_kmeans(n=400, k=20, iterations=6,
                                     granularity="point")
        cfg = AdaptationConfig(interval=0.02, min_instances=32)
        result = Cluster(program, {"a": 2, "b": 2}).run(
            timeout=180, adapt=cfg
        )
        assert result.reason == "idle"
        base = kmeans_baseline(n=400, k=20, iterations=6)
        for age in base.history:
            assert np.array_equal(sink.history[age], base.history[age])
        local = [r for r in result.replans if not r.remote]
        remote = [r for r in result.replans if r.remote]
        # every local commit is mirrored on the peer node at the same
        # epoch (2 nodes -> one mirror per commit)
        assert len(remote) == len(local)
        assert (
            sorted((r.epoch, r.decisions) for r in remote)
            == sorted((r.epoch, r.decisions) for r in local)
        )

    def test_adapt_flag_defaults(self):
        """adapt=True selects the default config and still converges."""
        program, sink = build_mulsum()
        result = Cluster(program, {"a": 2, "b": 2}).run(
            max_age=3, timeout=60, adapt=True
        )
        assert result.reason == "idle"
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][1], expected[age][1])


class TestTrafficAccounting:
    def test_cross_node_events_counted(self):
        program, _ = build_mulsum()
        transport = InProcTransport()
        cluster = Cluster(program, {"a": 1, "b": 1}, transport)
        result = cluster.run(max_age=2, timeout=60)
        # kernels are spread over two nodes: some stores must cross
        if len({result.assignment.node_of(k)
                for k in program.kernels}) > 1:
            assert result.transport.messages > 0
            assert result.transport.bytes > 0

    def test_colocated_pipeline_moves_less(self):
        """An explicit assignment keeping the mul2/plus5 loop on one node
        produces less cross-node traffic than splitting it (the HLS's
        partitioning objective made observable).  The global ``print``
        consumer is dropped so the loop's fields have single consumers."""
        from repro.dist.master import WorkloadAssignment
        from repro.dist.partition import Partition

        def run_with(assign_map):
            program, _ = build_mulsum()
            program = program.without_kernels("print")
            cluster = Cluster(program, {"a": 2, "b": 2})
            assignment = WorkloadAssignment(
                Partition(dict(assign_map), {"a": 2.0, "b": 2.0}),
                "manual", 0,
            )
            result = cluster.run(assignment=assignment, max_age=3,
                                 timeout=60)
            return result.transport.messages

        together = run_with({"init": "b", "mul2": "a", "plus5": "a"})
        split = run_with({"init": "b", "mul2": "a", "plus5": "b"})
        assert together < split


class TestErrors:
    def test_no_nodes_rejected(self):
        program, _ = build_mulsum()
        with pytest.raises(PartitionError):
            Cluster(program, {})

    def test_kernel_error_propagates(self):
        from repro.core import (
            AgeExpr,
            FieldDef,
            KernelBodyError,
            KernelDef,
            Program,
            StoreSpec,
        )

        def bad(ctx):
            raise RuntimeError("node down")

        prog = Program.build(
            [FieldDef("f")],
            [KernelDef("bad", bad,
                       stores=(StoreSpec("f", AgeExpr.const(0)),))],
        )
        with pytest.raises(KernelBodyError):
            Cluster(prog, {"a": 1, "b": 1}).run(timeout=60)

    def test_merged_instrumentation(self):
        program, _ = build_mulsum()
        result = Cluster(program, {"a": 2, "b": 2}).run(max_age=2,
                                                        timeout=60)
        instr = result.instrumentation
        assert instr["mul2"].instances == 3 * 5
        assert instr["print"].instances == 3
