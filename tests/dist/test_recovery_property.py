"""Property-based recovery tests (Hypothesis).

Whatever single fault is injected — any victim, any kill/drop kind, any
trigger point, any 2/3-way partitioning — a recovered run must reach
quiescence (never hang: the cluster ``timeout`` is the watchdog), must
never violate write-once semantics (the runtime raises
``WriteOnceViolation`` if re-execution double-writes diverging bytes),
and must produce exactly the fault-free output.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dist import Cluster, FaultInjector, FaultSchedule, FaultSpec, RecoveryConfig
from repro.workloads import build_mulsum, expected_series

FAST = RecoveryConfig(heartbeat_interval=0.01, heartbeat_timeout=0.1)

MAX_AGE = 3


def run_cluster(n_nodes: int, faults: FaultInjector | None):
    program, sink = build_mulsum()
    workers = {f"n{i}": 2 for i in range(n_nodes)}
    result = Cluster(program, workers).run(
        max_age=MAX_AGE,
        timeout=120,  # hang watchdog: quiescence must arrive well before
        faults=faults,
        recovery=FAST if faults is not None else None,
    )
    return result, sink


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_nodes=st.integers(min_value=2, max_value=3),
    victim=st.integers(min_value=0, max_value=2),
    kind=st.sampled_from(["kill", "drop"]),
    after=st.integers(min_value=0, max_value=6),
)
def test_single_fault_recovery_is_exact(n_nodes, victim, kind, after):
    spec = FaultSpec(f"n{victim % n_nodes}", kind, after)
    faults = FaultInjector(FaultSchedule([spec]))
    result, sink = run_cluster(n_nodes, faults)

    # Quiescence, not a hang and not an abort: recovery (or a fault that
    # never fired) must end in global idle within the watchdog.
    assert result.reason == "idle"

    # Exactness: the recovered output is byte-for-byte the fault-free
    # series.  Write-once violations would have raised inside run().
    expected = expected_series(MAX_AGE + 1)
    assert set(sink) == set(expected)
    for age, (m, p) in expected.items():
        assert np.array_equal(sink[age][0], m)
        assert np.array_equal(sink[age][1], p)

    # If the trigger was reached, recovery really happened.
    if faults.fired:
        assert len(result.recoveries) == len(faults.fired)
        for rec in result.recoveries:
            assert rec.attempt >= 1
            assert rec.recovery_s >= 0.0
