"""Unit tests for local/global topologies."""

import pytest

from repro.core import TopologyError
from repro.dist import GlobalTopology, LocalTopology, ProcessorSpec


class TestProcessorSpec:
    def test_capacity(self):
        assert ProcessorSpec("cpu", 4, 1.5).capacity == 6.0

    def test_validation(self):
        with pytest.raises(TopologyError):
            ProcessorSpec(cores=0)
        with pytest.raises(TopologyError):
            ProcessorSpec(speed=0.0)


class TestLocalTopology:
    def test_cpu_capacity_excludes_accelerators(self):
        t = LocalTopology("n", (
            ProcessorSpec("cpu", 4, 1.0),
            ProcessorSpec("gpu", 100, 0.1),
        ))
        assert t.cpu_capacity == 4.0
        assert t.total_capacity == 14.0
        assert t.has("gpu") and not t.has("dsp")

    def test_needs_processors(self):
        with pytest.raises(TopologyError):
            LocalTopology("n", ())


class TestGlobalTopology:
    def _topo(self):
        return GlobalTopology([
            LocalTopology("a", (ProcessorSpec("cpu", 4),)),
            LocalTopology("b", (ProcessorSpec("cpu", 2),)),
        ])

    def test_merge_and_query(self):
        g = self._topo()
        assert len(g) == 2
        assert "a" in g and "c" not in g
        assert g.node_names() == ["a", "b"]
        assert g.capacities() == {"a": 4.0, "b": 2.0}
        assert g.total_capacity() == 6.0

    def test_dynamic_add_remove(self):
        g = self._topo()
        e0 = g.epoch
        g.add(LocalTopology("c", (ProcessorSpec("cpu", 8),)))
        assert g.epoch > e0
        assert g.total_capacity() == 14.0
        removed = g.remove("a")
        assert removed.node == "a"
        assert g.node_names() == ["b", "c"]

    def test_duplicate_rejected(self):
        g = self._topo()
        with pytest.raises(TopologyError):
            g.add(LocalTopology("a", (ProcessorSpec(),)))

    def test_remove_unknown(self):
        with pytest.raises(TopologyError):
            self._topo().remove("ghost")

    def test_update_replaces(self):
        g = self._topo()
        g.update(LocalTopology("a", (ProcessorSpec("cpu", 16),)))
        assert g.capacities()["a"] == 16.0
        with pytest.raises(TopologyError):
            g.update(LocalTopology("ghost", (ProcessorSpec(),)))

    def test_as_graph(self):
        g = self._topo().as_graph()
        assert "master" in g
        assert g.has_edge("master", "a")
        assert any("cpu" in str(n) for n in g.nodes())
