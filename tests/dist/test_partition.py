"""Unit + property tests for the HLS graph partitioners."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PartitionError
from repro.core.graph import Digraph
from repro.dist import (
    greedy_partition,
    kernighan_lin,
    partition_graph,
    tabu_search,
)


def chain_graph(n=6, weight=1.0):
    g = Digraph()
    for i in range(n):
        g.add_node(f"k{i}", weight=weight)
    for i in range(n - 1):
        g.add_edge(f"k{i}", f"k{i+1}", weight=1.0)
    return g


def clustered_graph():
    """Two 3-cliques joined by one light edge; the obvious 2-cut."""
    g = Digraph()
    for group, names in enumerate((["a0", "a1", "a2"], ["b0", "b1", "b2"])):
        for n in names:
            g.add_node(n, weight=1.0)
        g.add_edge(names[0], names[1], weight=10.0)
        g.add_edge(names[1], names[2], weight=10.0)
        g.add_edge(names[2], names[0], weight=10.0)
    g.add_edge("a0", "b0", weight=0.1)
    return g


CAPS2 = {"n0": 1.0, "n1": 1.0}


class TestGreedy:
    def test_covers_all_nodes(self):
        g = chain_graph()
        p = greedy_partition(g, CAPS2)
        assert set(p.assign) == set(g.nodes())
        assert set(p.assign.values()) <= {"n0", "n1"}

    def test_balances_equal_weights(self):
        g = chain_graph(8)
        p = greedy_partition(g, CAPS2)
        loads = p.loads(g)
        assert loads["n0"] == loads["n1"] == 4.0

    def test_respects_capacity_ratios(self):
        g = chain_graph(9)
        p = greedy_partition(g, {"big": 2.0, "small": 1.0})
        loads = p.loads(g)
        assert loads["big"] > loads["small"]

    def test_rejects_empty_parts(self):
        with pytest.raises(PartitionError):
            greedy_partition(chain_graph(), {})

    def test_rejects_zero_capacity(self):
        with pytest.raises(PartitionError):
            greedy_partition(chain_graph(), {"a": 0.0})


class TestKernighanLin:
    def test_finds_natural_cut(self):
        g = clustered_graph()
        p = kernighan_lin(g, CAPS2, balance_penalty=2.0)
        # the two cliques should not be split
        assert len({p.assign[n] for n in ("a0", "a1", "a2")}) == 1
        assert len({p.assign[n] for n in ("b0", "b1", "b2")}) == 1
        assert p.edge_cut(g) == pytest.approx(0.1)

    def test_never_worse_than_greedy(self):
        g = clustered_graph()
        seed = greedy_partition(g, CAPS2)
        refined = kernighan_lin(g, CAPS2, start=seed)
        assert refined.cost(g) <= seed.cost(g) + 1e-9

    def test_start_not_mutated(self):
        g = clustered_graph()
        seed = greedy_partition(g, CAPS2)
        before = dict(seed.assign)
        kernighan_lin(g, CAPS2, start=seed)
        assert seed.assign == before


class TestTabu:
    def test_valid_partition(self):
        g = clustered_graph()
        p = tabu_search(g, CAPS2, iterations=80, seed=1)
        p.validate(g)
        assert set(p.assign) == set(g.nodes())

    def test_improves_or_matches_greedy(self):
        g = clustered_graph()
        seed = greedy_partition(g, CAPS2)
        p = tabu_search(g, CAPS2, start=seed, iterations=120, seed=3)
        assert p.cost(g) <= seed.cost(g) + 1e-9

    def test_deterministic_in_seed(self):
        g = clustered_graph()
        a = tabu_search(g, CAPS2, iterations=50, seed=7)
        b = tabu_search(g, CAPS2, iterations=50, seed=7)
        assert a.assign == b.assign


class TestPartitionMetrics:
    def test_edge_cut_counts_cross_edges(self):
        g = chain_graph(4)
        p = greedy_partition(g, CAPS2)
        manual = sum(
            1.0
            for u, v, _ in g.edges()
            if p.assign[u] != p.assign[v]
        )
        assert p.edge_cut(g) == manual

    def test_imbalance_zero_for_proportional(self):
        g = chain_graph(4)
        p = greedy_partition(g, CAPS2)
        if p.loads(g)["n0"] == p.loads(g)["n1"]:
            assert p.imbalance(g) == pytest.approx(0.0)

    def test_validate_catches_missing(self):
        g = chain_graph(3)
        p = greedy_partition(g, CAPS2)
        del p.assign["k0"]
        with pytest.raises(PartitionError):
            p.validate(g)

    def test_unknown_method(self):
        with pytest.raises(PartitionError):
            partition_graph(chain_graph(), CAPS2, "simulated-annealing")


@st.composite
def random_graph(draw):
    n = draw(st.integers(2, 12))
    g = Digraph()
    for i in range(n):
        g.add_node(i, weight=draw(st.floats(0.1, 10.0)))
    n_edges = draw(st.integers(0, min(20, n * (n - 1))))
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.add_edge(u, v, weight=draw(st.floats(0.1, 5.0)))
    return g


class TestPartitionProperties:
    @given(random_graph(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_all_methods_produce_valid_partitions(self, g, parts):
        caps = {f"p{i}": 1.0 for i in range(parts)}
        for method in ("greedy", "kl", "tabu"):
            kwargs = {"iterations": 20} if method == "tabu" else {}
            p = partition_graph(g, caps, method, **kwargs)
            p.validate(g)
            assert set(p.assign) == set(g.nodes())
            # every load non-negative and total preserved
            loads = p.loads(g)
            total = sum(loads.values())
            expected = sum(
                g.node(n).get("weight", 1.0) for n in g.nodes()
            )
            assert total == pytest.approx(expected)

    @given(random_graph())
    @settings(max_examples=20, deadline=None)
    def test_single_part_has_zero_cut(self, g):
        p = partition_graph(g, {"only": 1.0}, "greedy")
        assert p.edge_cut(g) == 0.0
