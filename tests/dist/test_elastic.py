"""Elastic membership integration: join, drain, chaos scale-out.

The load-bearing properties:

* **Byte-identity across migration** — scaling a running cluster (join
  or drain) must be invisible in every session's output: fence +
  event-log replay re-derives exactly the state the moved kernels had.
* **Clean drain is not a failure** — a planned drain never involves the
  :class:`~repro.dist.recovery.RecoveryManager` (the heartbeat monitor
  grants draining grace) and never truncates a stream.
* **Chaos scale-out** — doubling the offered fps mid-run and scaling
  2→4 nodes keeps the gold tier at zero sheds, with the migration
  travelling ``scale.plan``/``scale.commit`` and flipping the
  membership epoch.
"""

import threading
import time

import pytest

from repro.core import SchedulerError
from repro.dist import Cluster, ElasticityConfig, RecoveryConfig
from repro.stream import StreamConfig, merge_sessions
from repro.workloads import MJPEGConfig, build_mjpeg_stream, mjpeg_baseline

FAST = RecoveryConfig(heartbeat_interval=0.01, heartbeat_timeout=0.5)


def make_session(name, *, frames=6, seed=1234, size=32, **scfg_kw):
    cfg = MJPEGConfig(width=size, height=size, frames=frames, seed=seed)
    kw = dict(fps=0, max_frames=frames, lag_window=4)
    kw.update(scfg_kw)
    program, sink, binding = build_mjpeg_stream(cfg, StreamConfig(**kw))
    from repro.stream import SessionSpec

    return SessionSpec(name, program, binding), sink, cfg


def run_elastic(cluster, scale, *, delay=0.12, **run_kw):
    """Run the cluster on this thread; fire ``scale(cluster)`` from a
    side thread once the run is in flight plus ``delay`` seconds."""
    fired = threading.Event()
    failures = []

    def trigger():
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            rt = cluster._rt
            if rt is not None and rt.running:
                break
            time.sleep(0.005)
        time.sleep(delay)
        try:
            scale(cluster)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)
        fired.set()

    t = threading.Thread(target=trigger, daemon=True)
    t.start()
    result = cluster.run(**run_kw)
    fired.wait(timeout=30)
    if failures:
        raise failures[0]
    return result


class TestJoin:
    def test_midrun_join_is_byte_identical(self):
        """Scale 2→3 while frames are in flight: every session's output
        must match its solo baseline, and the migration must have
        actually moved kernels behind a plan/commit pair."""
        specs, sinks, cfgs = [], {}, {}
        for i in range(2):
            spec, sink, cfg = make_session(
                f"j{i}", frames=30, seed=500 + i, fps=100, lag_window=8
            )
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        merged = merge_sessions(specs)
        cluster = Cluster(merged, {"n0": 2, "n1": 2})
        result = run_elastic(
            cluster, lambda c: c.add_node("n2", workers=2),
            sessions=specs, timeout=300, stall_timeout=120,
            elastic=True,
        )
        assert result.reason == "idle"
        assert len(result.migrations) == 1
        mig = result.migrations[0]
        assert mig.reason == "join:n2"
        assert mig.moved_kernels > 0
        assert mig.built  # the newcomer (at least) was built
        assert result.membership["nodes"]["n2"] == "active"
        assert result.membership["epoch"] >= 2  # joining -> active
        for name in sinks:
            r = result.stream.sessions[name]
            assert r.offered == r.completed == 30
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )

    def test_membership_ops_need_elastic_run(self):
        spec, _, _ = make_session("x", frames=2)
        cluster = Cluster(merge_sessions([spec]), {"n0": 2})
        with pytest.raises(SchedulerError):
            cluster.add_node("n1")
        with pytest.raises(SchedulerError):
            cluster.drain_node("n0")
        with pytest.raises(SchedulerError):
            cluster.set_offered_rate(10.0)

    def test_non_elastic_run_unchanged(self):
        """Without ``elastic=`` the membership machinery stays cold: no
        routing gate, no epoch churn, byte-identical output."""
        spec, sink, cfg = make_session("cold", frames=5)
        cluster = Cluster(merge_sessions([spec]), {"n0": 2, "n1": 2})
        result = cluster.run(
            sessions=[spec], timeout=120, stall_timeout=60
        )
        assert cluster.transport.membership is None
        assert result.membership is None
        assert result.transport.stale_rejects == 0
        assert sink.stream() == mjpeg_baseline(config=cfg)


class TestDrain:
    def test_clean_drain_no_recovery_no_truncation(self):
        """The regression the draining grace state exists for: a planned
        drain under a *live* recovery manager must not look like a
        failure — no RecoveryRecord, no stream truncation."""
        specs, sinks, cfgs = [], {}, {}
        for i in range(2):
            spec, sink, cfg = make_session(
                f"d{i}", frames=30, seed=700 + i, fps=100, lag_window=8
            )
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        merged = merge_sessions(specs)
        cluster = Cluster(merged, {"n0": 2, "n1": 2, "n2": 2})
        result = run_elastic(
            cluster, lambda c: c.drain_node("n2"),
            sessions=specs, timeout=300, stall_timeout=120,
            recovery=FAST, elastic=True,
        )
        assert result.reason == "idle"
        assert result.recoveries == []  # drain never woke the manager
        assert len(result.migrations) == 1
        assert result.migrations[0].reason == "drain:n2"
        assert result.membership["nodes"]["n2"] == "left"
        for name in sinks:
            r = result.stream.sessions[name]
            assert r.offered == r.completed == 30  # no truncation
            assert r.shed == 0
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )

    def test_drain_last_node_rejected(self):
        spec, _, _ = make_session("solo", frames=30, fps=100)
        cluster = Cluster(merge_sessions([spec]), {"n0": 2})
        caught = []

        def scale(c):
            try:
                c.drain_node("n0")
            except SchedulerError as exc:
                caught.append(exc)

        run_elastic(cluster, scale, sessions=[spec],
                    timeout=120, stall_timeout=60, elastic=True)
        assert caught


class TestChaosScaleOut:
    def test_double_fps_scale_2_to_4_gold_zero_shed(self):
        """The ISSUE's chaos proof: double the offered fps mid-run while
        scaling 2→4 nodes; the gold session must shed nothing and both
        sessions stay byte-identical to their unscaled references."""
        specs, sinks, cfgs = [], {}, {}
        tiers = {"gold0": "gold", "be0": "best-effort"}
        for i, (name, tier) in enumerate(sorted(tiers.items())):
            spec, sink, cfg = make_session(
                name, frames=40, seed=900 + i, fps=50, lag_window=8,
                deadline_ms=250.0, qos_class=tier,
            )
            specs.append(spec)
            sinks[name] = sink
            cfgs[name] = cfg
        merged = merge_sessions(specs)
        cluster = Cluster(merged, {"n0": 2, "n1": 2})

        def scale(c):
            c.set_offered_rate(100.0)  # double the offered fps
            c.add_node("n2", workers=2)
            c.add_node("n3", workers=2)

        result = run_elastic(
            cluster, scale, delay=0.2,
            sessions=specs, timeout=600, stall_timeout=240,
            recovery=FAST, elastic=True,
        )
        assert result.reason == "idle"
        assert result.recoveries == []
        assert len(result.migrations) == 2
        assert [m.reason for m in result.migrations] == [
            "join:n2", "join:n3"
        ]
        mem = result.membership
        assert mem["nodes"] == {
            "n0": "active", "n1": "active",
            "n2": "active", "n3": "active",
        }
        assert mem["epoch"] >= 4
        gold = result.stream.sessions["gold0"]
        assert gold.shed == 0  # the headline guarantee
        assert gold.offered == gold.completed == 40
        # Byte-identity vs the unscaled single-tenant reference.
        assert sinks["gold0"].stream() == mjpeg_baseline(
            config=cfgs["gold0"]
        )
        # The commit went out on the control plane under the new epoch.
        snap = result.metrics.snapshot()
        assert snap["elastic.migrations"]["value"] == 2
        assert snap["membership.epoch"]["value"] == mem["epoch"]

    def test_elasticity_driver_time_trigger_scales(self):
        """End-to-end ElasticityConfig: the driver's deterministic time
        trigger rescales 2→3 with no manual membership calls."""
        specs, sinks, cfgs = [], {}, {}
        for i in range(2):
            spec, sink, cfg = make_session(
                f"t{i}", frames=30, seed=40 + i, fps=60, lag_window=8
            )
            specs.append(spec)
            sinks[spec.name] = sink
            cfgs[spec.name] = cfg
        merged = merge_sessions(specs)
        cluster = Cluster(merged, {"n0": 2, "n1": 2})
        result = cluster.run(
            sessions=specs, timeout=300, stall_timeout=120,
            elastic=ElasticityConfig(
                interval=0.02, scale_at=0.15, target_nodes=3,
                cooldown=0.0, queue_high=1e9, queue_low=-1.0,
            ),
        )
        assert result.reason == "idle"
        assert len(result.migrations) == 1
        assert result.migrations[0].reason == "join:node0"
        assert result.membership["nodes"]["node0"] == "active"
        for name in sinks:
            assert sinks[name].stream() == mjpeg_baseline(
                config=cfgs[name]
            )
