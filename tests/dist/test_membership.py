"""Unit tests for dynamic membership, elasticity policy and the
incremental repartitioner."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph import Digraph
from repro.dist import (
    ElasticityConfig,
    ElasticityDriver,
    HeartbeatMonitor,
    InProcTransport,
    MEMBERSHIP_TOPIC,
    MembershipTable,
    MembershipView,
    incremental_partition,
    greedy_partition,
)


def chain_graph(n=6, weight=1.0):
    g = Digraph()
    for i in range(n):
        g.add_node(f"k{i}", weight=weight)
    for i in range(n - 1):
        g.add_edge(f"k{i}", f"k{i+1}", weight=1.0)
    return g


class TestMembershipTable:
    def test_add_and_view(self):
        t = MembershipTable()
        t.add("a")
        t.add("b", "joining")
        v = t.view()
        assert v.epoch == 2
        assert v.state("a") == "active"
        assert v.state("b") == "joining"
        assert v.active() == ("a",)
        assert set(v.live()) == {"a"}

    def test_epoch_monotone_per_transition(self):
        t = MembershipTable()
        t.add("a")
        e0 = t.epoch
        t.transition("a", "draining")
        t.transition("a", "left")
        assert t.epoch == e0 + 2
        assert [s for _, _, s in t.history] == ["active", "draining", "left"]

    def test_same_state_transition_is_noop(self):
        t = MembershipTable()
        t.add("a")
        e0 = t.epoch
        t.transition("a", "active")
        assert t.epoch == e0

    def test_illegal_transitions_rejected(self):
        t = MembershipTable()
        t.add("a")
        t.transition("a", "dead")
        with pytest.raises(ValueError):
            t.transition("a", "active")
        with pytest.raises(ValueError):
            t.transition("nope", "active")
        with pytest.raises(ValueError):
            t.add("x", "zombie")

    def test_readd_of_live_member_rejected(self):
        t = MembershipTable()
        t.add("a")
        with pytest.raises(ValueError):
            t.add("a")
        # a departed name may rejoin
        t.transition("a", "draining")
        t.transition("a", "left")
        t.add("a", "joining")
        assert t.state("a") == "joining"

    def test_publish_fires_outside_lock(self):
        views = []
        t = MembershipTable()
        t.set_publish(
            # Re-entering the table from the callback deadlocks if the
            # broadcast were made under the lock.
            lambda v: views.append((v.epoch, t.epoch))
        )
        t.add("a")
        t.transition("a", "draining")
        assert views == [(1, 1), (2, 2)]

    def test_routable(self):
        t = MembershipTable()
        t.add("a")
        t.add("b", "draining")
        v = t.view()
        assert v.routable("a")
        assert v.routable("b")  # draining still sends until fenced
        assert v.routable("master")  # unknown control endpoints pass
        t.transition("a", "dead")
        assert not t.view().routable("a")

    def test_as_dict_has_history(self):
        t = MembershipTable()
        t.add("a")
        doc = t.as_dict()
        assert doc["epoch"] == 1
        assert doc["nodes"] == {"a": "active"}
        assert doc["history"][-1]["state"] == "active"


class TestTransportMembershipGate:
    def test_epoch_stamped_and_stale_rejected(self):
        t = InProcTransport()
        table = MembershipTable()
        table.add("n1")
        t.membership = table
        got = []
        t.subscribe("f", "n2", got.append)
        assert t.publish("f", "n1", "x") == 1
        assert got[0].epoch == 1  # stamped with the view's epoch
        table.transition("n1", "dead")
        assert t.publish("f", "n1", "late") == 0
        assert t.stats.stale_rejects == 1
        assert len(got) == 1  # the late delivery never arrived

    def test_left_sender_rejected_unknown_passes(self):
        t = InProcTransport()
        table = MembershipTable()
        table.add("n1", "draining")
        t.membership = table
        got = []
        t.subscribe("f", "n2", got.append)
        assert t.publish("f", "n1", "ok") == 1  # draining still routes
        table.transition("n1", "left")
        assert t.publish("f", "n1", "late") == 0
        assert t.publish("f", "stream-source", "ok") == 1
        assert t.stats.stale_rejects == 1

    def test_rejected_publish_never_logged(self):
        t = InProcTransport()
        t.enable_log()
        table = MembershipTable()
        table.add("n1")
        table.transition("n1", "dead")
        t.membership = table
        t.publish("f", "n1", "late")
        assert list(t.replay({"f"})) == []

    def test_view_broadcast_on_control_topic(self):
        t = InProcTransport()
        table = MembershipTable()
        got = []
        t.subscribe(MEMBERSHIP_TOPIC, "n1", got.append)
        table.set_publish(
            lambda v: t.publish(MEMBERSHIP_TOPIC, "master", v, control=True)
        )
        table.add("n1")
        table.add("n2", "joining")
        assert [m.payload.epoch for m in got] == [1, 2]
        assert isinstance(got[-1].payload, MembershipView)
        assert got[-1].payload.state("n2") == "joining"


class TestHeartbeatDrainingGrace:
    def test_draining_silence_is_not_failure(self):
        t = InProcTransport()
        mon = HeartbeatMonitor(t, timeout=0.03)
        mon.watch("n1")
        mon.mark_draining("n1")
        time.sleep(0.06)
        assert mon.check() == []  # planned silence: no failure report
        assert mon.failures() == {}
        assert mon.draining() == ["n1"]

    def test_resume_watch_rearms_detection(self):
        t = InProcTransport()
        mon = HeartbeatMonitor(t, timeout=0.03)
        mon.watch("n1")
        mon.mark_draining("n1")
        time.sleep(0.05)
        mon.resume_watch("n1")
        assert mon.check() == []  # clocks restarted at resume
        time.sleep(0.05)
        assert mon.check() == ["n1"]


class TestIncrementalPartition:
    def test_no_change_is_zero_moves(self):
        g = chain_graph(8)
        caps = {"n0": 1.0, "n1": 1.0}
        p0 = greedy_partition(g, caps)
        p1 = incremental_partition(g, caps, p0)
        assert p1.assign == p0.assign

    def test_join_moves_only_what_the_newcomer_takes(self):
        g = chain_graph(9)
        caps2 = {"n0": 1.0, "n1": 1.0}
        p0 = greedy_partition(g, caps2)
        caps3 = dict(caps2, n2=1.0)
        p1 = incremental_partition(g, caps3, p0)
        assert set(p1.assign) == set(g.nodes())
        moved = [k for k in g.nodes() if p1.assign[k] != p0.assign[k]]
        # every moved kernel went *to* the newcomer (sticky survivors)
        assert moved and all(p1.assign[k] == "n2" for k in moved)
        assert len(moved) < len(g.nodes())

    def test_drain_reassigns_only_orphans(self):
        g = chain_graph(9)
        caps3 = {"n0": 1.0, "n1": 1.0, "n2": 1.0}
        p0 = greedy_partition(g, caps3)
        caps2 = {"n0": 1.0, "n1": 1.0}
        # A prohibitive move penalty: survivors must stay put, only the
        # drained part's orphans may land elsewhere.
        p1 = incremental_partition(g, caps2, p0, move_penalty=100.0)
        assert set(p1.assign.values()) <= {"n0", "n1"}
        stayed = [k for k in g.nodes() if p0.assign[k] in caps2]
        for k in stayed:
            assert p1.assign[k] == p0.assign[k]

    def test_move_penalty_trades_cut_for_stability(self):
        g = chain_graph(10)
        caps = {"n0": 1.0, "n1": 1.0, "n2": 1.0}
        p0 = greedy_partition(g, {"n0": 1.0, "n1": 1.0})
        loose = incremental_partition(g, caps, p0, move_penalty=0.0)
        tight = incremental_partition(g, caps, p0, move_penalty=100.0)
        moves = lambda p: sum(  # noqa: E731
            1 for k in g.nodes()
            if k in p0.assign and p.assign[k] != p0.assign[k]
        )
        assert moves(tight) <= moves(loose)

    @given(
        n=st.integers(min_value=2, max_value=12),
        parts=st.integers(min_value=1, max_value=4),
        new_parts=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_total_cover_no_strays(self, n, parts, new_parts):
        g = chain_graph(n)
        caps0 = {f"p{i}": 1.0 for i in range(parts)}
        p0 = greedy_partition(g, caps0)
        caps1 = {f"p{i}": 1.0 for i in range(new_parts)}
        p1 = incremental_partition(g, caps1, p0)
        assert set(p1.assign) == set(g.nodes())
        assert set(p1.assign.values()) <= set(caps1)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def sample(self, **kw):
        base = {"nodes": 2, "queue_per_worker": 0.0, "burn": 0.0,
                "elapsed": self.t}
        base.update(kw)
        return base


class TestElasticityDriver:
    def _driver(self, cfg, sample_box):
        calls = []

        def scale(target):
            calls.append(target)
            sample_box["nodes"] = target
            return True

        drv = ElasticityDriver(
            cfg,
            metrics_fn=lambda: dict(sample_box),
            scale_fn=scale,
        )
        return drv, calls

    def test_time_trigger_fires_once(self):
        cfg = ElasticityConfig(scale_at=4.0, target_nodes=4, cooldown=0.0)
        # queue depth in the dead band: only the time trigger may act
        box = {"nodes": 2, "queue_per_worker": 1.0, "burn": 0.0,
               "elapsed": 1.0}
        drv, calls = self._driver(cfg, box)
        assert not drv.poll_once()  # too early
        box["elapsed"] = 4.5
        assert drv.poll_once()
        assert calls == [4]
        box["elapsed"] = 9.0
        assert not drv.poll_once()  # one-shot
        assert drv.actions[0][3].startswith("time-trigger")

    def test_queue_pressure_scales_out(self):
        cfg = ElasticityConfig(queue_high=4.0, cooldown=0.0, max_nodes=3)
        box = {"nodes": 2, "queue_per_worker": 9.0, "burn": 0.0,
               "elapsed": 1.0}
        drv, calls = self._driver(cfg, box)
        assert drv.poll_once()
        assert calls == [3]
        assert drv.poll_once() is False  # capped at max_nodes

    def test_slo_burn_scales_out(self):
        cfg = ElasticityConfig(burn_high=1.0, cooldown=0.0)
        box = {"nodes": 2, "queue_per_worker": 0.0, "burn": 2.5,
               "elapsed": 1.0}
        drv, calls = self._driver(cfg, box)
        assert drv.poll_once()
        assert calls == [3]

    def test_idle_scales_in_but_not_below_min(self):
        cfg = ElasticityConfig(queue_low=0.25, cooldown=0.0, min_nodes=2)
        box = {"nodes": 3, "queue_per_worker": 0.0, "burn": 0.0,
               "elapsed": 1.0}
        drv, calls = self._driver(cfg, box)
        assert drv.poll_once()
        assert calls == [2]
        assert not drv.poll_once()  # at min_nodes: hold

    def test_cooldown_suppresses_thrash(self):
        cfg = ElasticityConfig(queue_high=1.0, cooldown=10.0)
        box = {"nodes": 2, "queue_per_worker": 5.0, "burn": 0.0,
               "elapsed": 1.0}
        drv, calls = self._driver(cfg, box)
        assert drv.poll_once()
        box["elapsed"] = 2.0
        assert not drv.poll_once()  # within cooldown
        box["elapsed"] = 12.0
        assert drv.poll_once()
        assert calls == [3, 4]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ElasticityConfig(scale_at=1.0)  # target_nodes missing
        with pytest.raises(ValueError):
            ElasticityConfig(min_nodes=0)
        with pytest.raises(ValueError):
            ElasticityConfig(interval=0)


@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=3)),
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_membership_interleaving_property(ops):
    """Any interleaving of joins and drains keeps the table legal:
    epochs strictly increase per transition, live nodes are unique, and
    the history replays to the final state."""
    t = MembershipTable()
    last_epoch = 0
    for is_join, idx in ops:
        name = f"n{idx}"
        state = t.state(name)
        if is_join:
            if state in ("joining", "active", "draining"):
                continue
            t.add(name, "joining")
            t.transition(name, "active")
        else:
            if state != "active":
                continue
            t.transition(name, "draining")
            t.transition(name, "left")
        assert t.epoch > last_epoch
        last_epoch = t.epoch
    replayed = {}
    for _, node, state in t.history:
        replayed[node] = state
    assert replayed == t.view().states
