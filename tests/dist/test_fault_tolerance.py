"""Fault-tolerant cluster runtime: injection, detection, recovery.

The executable form of the determinism-under-failure claim: a cluster
run that loses a node mid-flight must — after heartbeat detection,
fencing, event-log replay and re-execution — produce output
bit-identical to the fault-free run.
"""

import time

import numpy as np
import pytest

from repro.core import NodeFailureError, RuntimeStateError, WorkCounter
from repro.dist import (
    Cluster,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    Heartbeat,
    HeartbeatMonitor,
    InProcTransport,
    LIVENESS_TOPIC,
    MasterNode,
    LocalTopology,
    ProcessorSpec,
    RecoveryConfig,
)
from repro.media import synthetic_sequence
from repro.workloads import (
    MJPEGConfig,
    build_kmeans,
    build_mjpeg,
    build_mulsum,
    expected_series,
    kmeans_baseline,
    mjpeg_baseline,
)

FAST = RecoveryConfig(heartbeat_interval=0.01, heartbeat_timeout=0.1)


def injector(*specs: FaultSpec) -> FaultInjector:
    return FaultInjector(FaultSchedule(specs))


class TestFaultSchedule:
    def test_spec_validation(self):
        with pytest.raises(RuntimeStateError):
            FaultSpec("a", "explode")
        with pytest.raises(RuntimeStateError):
            FaultSpec("a", "kill", -1)

    def test_parse(self):
        assert FaultSpec.parse("n1:kill:5") == FaultSpec("n1", "kill", 5)
        assert FaultSpec.parse("n1:drop") == FaultSpec("n1", "drop", 0)
        assert FaultSpec.parse("n1") == FaultSpec("n1", "kill", 0)

    def test_json_round_trip(self):
        sched = FaultSchedule(
            [FaultSpec("a", "kill", 3), FaultSpec("b", "drop", 1)], seed=42
        )
        back = FaultSchedule.from_json(sched.to_json())
        assert back.specs == sched.specs
        assert back.seed == 42

    def test_random_is_seed_deterministic(self):
        nodes = ["a", "b", "c"]
        s1 = FaultSchedule.random(nodes, 7, kinds=("kill", "drop"))
        s2 = FaultSchedule.random(nodes, 7, kinds=("kill", "drop"))
        assert s1.specs == s2.specs
        assert FaultSchedule.random(nodes, 8).specs != () or True


class TestHeartbeatDetection:
    def test_silence_declares_dead(self):
        t = InProcTransport()
        mon = HeartbeatMonitor(t, timeout=0.05)
        mon.watch("n1")
        assert mon.check() == []
        time.sleep(0.08)
        assert mon.check() == ["n1"]
        # one-shot: not reported twice
        assert mon.check() == []
        assert "no heartbeat" in mon.failures()["n1"]

    def test_beats_keep_node_alive(self):
        t = InProcTransport()
        mon = HeartbeatMonitor(t, timeout=0.08)
        mon.watch("n1")
        for seq in range(4):
            t.publish(LIVENESS_TOPIC, "n1",
                      Heartbeat("n1", seq, seq, 0, 0), control=True)
            time.sleep(0.03)
            assert mon.check() == []

    def test_frozen_progress_with_backlog_is_a_stall(self):
        t = InProcTransport()
        mon = HeartbeatMonitor(t, timeout=10.0, progress_timeout=0.05)
        mon.watch("n1")
        for seq in range(5):
            t.publish(LIVENESS_TOPIC, "n1",
                      Heartbeat("n1", seq, executed=3, busy=1, backlog=2),
                      control=True)
            time.sleep(0.02)
        assert mon.check() == ["n1"]
        assert "no progress" in mon.failures()["n1"]

    def test_idle_node_is_not_a_stall(self):
        t = InProcTransport()
        mon = HeartbeatMonitor(t, timeout=10.0, progress_timeout=0.05)
        mon.watch("n1")
        for seq in range(5):
            t.publish(LIVENESS_TOPIC, "n1",
                      Heartbeat("n1", seq, executed=3, busy=0, backlog=0),
                      control=True)
            time.sleep(0.02)
        assert mon.check() == []

    def test_unwatched_node_never_reported(self):
        t = InProcTransport()
        mon = HeartbeatMonitor(t, timeout=0.02)
        mon.watch("n1")
        mon.unwatch("n1")
        time.sleep(0.05)
        assert mon.check() == []


class TestInjectorUnit:
    def test_trigger_counts_instances(self):
        inj = injector(FaultSpec("n", "kill", 2))
        assert inj._before_execute("n", "i0") is False
        assert inj._before_execute("n", "i1") is False
        assert inj._before_execute("n", "i2") is True  # fault fires
        assert inj.is_down("n")
        assert inj.heartbeats_suppressed("n")
        assert inj.captive_instances("n") == ["i2"]
        # subsequent workers are captured too
        assert inj._before_execute("n", "i3") is True
        assert inj.captive_count("n") == 2

    def test_stall_keeps_heartbeats(self):
        inj = injector(FaultSpec("n", "stall", 0))
        assert inj._before_execute("n", "i") is True
        assert inj.is_down("n")
        assert not inj.heartbeats_suppressed("n")

    def test_drop_partitions_transport(self):
        t = InProcTransport()
        c = WorkCounter()
        inj = injector(FaultSpec("n", "drop", 1))
        inj.attach(t, c)
        assert inj._before_execute("n", "i0") is False
        assert t.dropped_senders() == set()
        assert inj._before_execute("n", "i1") is False  # runs, but cut off
        assert t.dropped_senders() == {"n"}
        assert not inj.is_down("n")
        assert c.value() == 1  # fault token held
        inj.release_token("n")
        assert c.value() == 0

    def test_exact_name_match_spares_replacement(self):
        inj = injector(FaultSpec("n", "kill", 0))
        assert inj._before_execute("n~1", "i") is False
        assert inj._before_execute("n", "i") is True


class TestKillRecovery:
    def test_mulsum_bit_identical_after_kill(self):
        program, sink = build_mulsum()
        res = Cluster(program, {"a": 2, "b": 2}).run(
            max_age=3, timeout=60,
            faults=injector(FaultSpec("a", "kill", 3)), recovery=FAST,
        )
        assert res.reason == "idle"
        assert len(res.recoveries) == 1
        rec = res.recoveries[0]
        assert rec.failed == "a"
        assert rec.replacement == "a~1"
        assert rec.replayed > 0
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    @pytest.mark.parametrize("victim", ["a", "b", "c"])
    def test_mjpeg_kill_each_node_byte_identical(self, victim):
        """One of three nodes dies mid-encode; the recovered stream must
        equal the fault-free baseline byte for byte."""
        cfg = MJPEGConfig(width=64, height=64, frames=3)
        clip = synthetic_sequence(3, 64, 64, cfg.seed)
        program, sink = build_mjpeg(clip, cfg)
        res = Cluster(program, {"a": 2, "b": 1, "c": 1}).run(
            timeout=300,
            faults=injector(FaultSpec(victim, "kill", 1)), recovery=FAST,
        )
        assert res.reason == "idle"
        assert len(res.recoveries) == 1
        assert sink.stream() == mjpeg_baseline(clip, cfg)

    def test_kmeans_centroids_identical_after_kill(self):
        program, sink = build_kmeans(n=60, k=5, iterations=3,
                                     granularity="point")
        res = Cluster(program, {"a": 2, "b": 1, "c": 1}).run(
            timeout=120,
            faults=injector(FaultSpec("b", "kill", 2)), recovery=FAST,
        )
        assert res.reason == "idle"
        base = kmeans_baseline(n=60, k=5, iterations=3)
        for age in base.history:
            assert np.allclose(sink.history[age], base.history[age])

    def test_recovery_instrumentation_counters(self):
        program, sink = build_mulsum()
        res = Cluster(program, {"a": 2, "b": 2}).run(
            max_age=3, timeout=60,
            faults=injector(FaultSpec("a", "kill", 2)), recovery=FAST,
        )
        instr = res.instrumentation
        assert instr.node_failures == 1
        assert instr.recovery_retries == 1
        assert instr.recovery_time > 0
        assert instr.replayed_events > 0

    def test_topology_records_failure(self):
        program, sink = build_mulsum()
        cluster = Cluster(program, {"a": 2, "b": 2})
        cluster.run(
            max_age=3, timeout=60,
            faults=injector(FaultSpec("b", "kill", 2)), recovery=FAST,
        )
        assert cluster.master.topology.failed_nodes() == ["b"]
        assert "b~1" in cluster.master.topology.node_names()


class TestOtherFaultKinds:
    def test_drop_partition_recovers(self):
        """A partitioned node's events are lost in flight but retained in
        the log; replay plus re-announcing skip-stores feeds the starved
        consumers."""
        program, sink = build_mulsum()
        res = Cluster(program, {"a": 2, "b": 2}).run(
            max_age=3, timeout=60,
            faults=injector(FaultSpec("a", "drop", 2)), recovery=FAST,
        )
        assert res.reason == "idle"
        assert len(res.recoveries) == 1
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])

    def test_stall_detected_by_progress_watchdog(self):
        program, sink = build_mulsum()
        cfg = RecoveryConfig(heartbeat_interval=0.01,
                             heartbeat_timeout=2.0,
                             progress_timeout=0.15)
        res = Cluster(program, {"a": 2, "b": 2}).run(
            max_age=3, timeout=60,
            faults=injector(FaultSpec("a", "stall", 2)), recovery=cfg,
        )
        assert res.reason == "idle"
        assert len(res.recoveries) == 1
        assert "no progress" in res.recoveries[0].reason
        expected = expected_series(4)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])


class TestUnrecoverable:
    def test_restart_budget_exhausted(self):
        program, _ = build_mulsum()
        faults = injector(
            FaultSpec("a", "kill", 2),
            FaultSpec("a~1", "kill", 1),
            FaultSpec("a~2", "kill", 1),
        )
        cfg = RecoveryConfig(heartbeat_interval=0.01,
                             heartbeat_timeout=0.08, max_restarts=2)
        with pytest.raises(NodeFailureError) as exc_info:
            Cluster(program, {"a": 2, "b": 2}).run(
                max_age=3, timeout=60, faults=faults, recovery=cfg,
            )
        assert exc_info.value.failures == [
            ("a", 1), ("a~1", 2), ("a~2", 3)
        ]

    def test_no_surviving_node(self):
        program, _ = build_mulsum()
        with pytest.raises(NodeFailureError, match="no registered node"):
            Cluster(program, {"solo": 2}).run(
                max_age=3, timeout=60,
                faults=injector(FaultSpec("solo", "kill", 2)),
                recovery=FAST,
            )


class TestOptIn:
    def test_default_run_has_no_control_traffic(self):
        """Without faults/recovery nothing changes: no heartbeats, no
        event log, stats identical to the pre-fault-tolerance layer."""
        program, _ = build_mulsum()
        transport = InProcTransport()
        Cluster(program, {"solo": 2}, transport).run(max_age=1, timeout=60)
        assert transport.stats.messages == 0
        assert transport.log_size() == 0

    def test_ft_single_node_still_zero_data_messages(self):
        """Heartbeats are control traffic: invisible in the store/resize
        accounting even with recovery armed."""
        program, sink = build_mulsum()
        transport = InProcTransport()
        res = Cluster(program, {"solo": 2}, transport).run(
            max_age=1, timeout=60, recovery=FAST,
        )
        assert res.reason == "idle"
        assert transport.stats.messages == 0

    def test_master_host_selection(self):
        m = MasterNode()
        m.register(LocalTopology("a", (ProcessorSpec("cpu", 2),)))
        m.register(LocalTopology("b", (ProcessorSpec("cpu", 4),)))
        assert m.select_host() == "b"
        assert m.select_host(exclude=("b",)) == "a"
        m.on_failure("b")
        assert m.select_host() == "a"
        assert m.topology.failed_nodes() == ["b"]
        m.on_failure("a")
        assert m.select_host() is None
