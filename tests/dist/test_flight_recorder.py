"""Flight recorder + observability on the fault-tolerant cluster path.

The acceptance scenario: a cluster chaos run where a killed node
exhausts its restart budget must dump a flight-recorder timeline that
shows the failure story — heartbeat silence, fencing, re-execution —
as a schema-valid Chrome trace next to the chaos repro artifact.
"""

import json

import pytest

from repro.core.errors import NodeFailureError
from repro.dist import Cluster, FaultInjector, FaultSchedule, RecoveryConfig
from repro.dist.faults import FaultSpec
from repro.obs import Tracer, flatten, validate_chrome_trace
from repro.workloads import build_mulsum

FAST = RecoveryConfig(heartbeat_interval=0.01, heartbeat_timeout=0.1,
                      max_restarts=1)


class TestFlightRecorderOnFailure:
    def test_budget_exhaustion_dumps_failure_timeline(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("P2G_FLIGHT_DIR", str(tmp_path))
        # Kill n0, then kill its replacement: with a budget of one
        # restart the second failure is unrecoverable.
        schedule = FaultSchedule([
            FaultSpec("n0", "kill", after_instances=2),
            FaultSpec("n0~1", "kill", after_instances=1),
        ])
        program, _sink = build_mulsum()
        with pytest.raises(NodeFailureError) as info:
            Cluster(program, {"n0": 2, "n1": 2}).run(
                max_age=3, timeout=60,
                faults=FaultInjector(schedule), recovery=FAST,
            )
        path = getattr(info.value, "flight_path", None)
        assert path is not None, "no flight recording attached"
        assert path.parent == tmp_path
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) > 0
        names = {e["name"] for e in doc["traceEvents"]}
        # The failure story, in events: silence detected, the victim
        # fenced, and its work re-executed on a replacement.
        assert "heartbeat-silence" in names
        assert "fencing" in names
        assert "re-execution" in names
        assert "heartbeat" in names
        assert "NodeFailureError" in doc["flight"]["reason"]


class TestClusterObservability:
    def test_ft_run_arms_ring_tracer_and_aggregates_metrics(self):
        schedule = FaultSchedule([FaultSpec("n0", "kill",
                                            after_instances=2)])
        program, sink = build_mulsum()
        result = Cluster(program, {"n0": 2, "n1": 2}).run(
            max_age=3, timeout=60,
            faults=FaultInjector(schedule), recovery=FAST,
        )
        assert result.reason == "idle"
        assert len(sink) == 4
        # Flight recorder was armed by default on the ft path.
        assert result.tracer is not None
        assert result.tracer.mode == "ring"
        flat = flatten(result.metrics.snapshot())
        if result.recoveries:  # the kill fired before quiescence
            assert flat["recovery.node_failures"] >= 1
            assert flat["recovery.recovery_s.count"] >= 1
        assert flat["instances.executed"] > 0
        assert flat["transport.messages"] == result.transport.messages
        assert flat["transport.bytes"] == result.transport.bytes

    def test_plain_run_has_no_tracer_but_keeps_metrics(self):
        program, _sink = build_mulsum()
        result = Cluster(program, {"n0": 2, "n1": 2}).run(
            max_age=3, timeout=60,
        )
        assert result.tracer is None  # nothing armed without ft
        flat = flatten(result.metrics.snapshot())
        assert flat["instances.executed"] > 0

    def test_full_tracer_sees_every_node_and_the_control_plane(self):
        schedule = FaultSchedule([FaultSpec("n0", "kill",
                                            after_instances=2)])
        program, _sink = build_mulsum()
        tr = Tracer(mode="full")
        result = Cluster(program, {"n0": 2, "n1": 2}).run(
            max_age=3, timeout=60,
            faults=FaultInjector(schedule), recovery=FAST,
            tracer=tr,
        )
        assert result.tracer is tr
        events = tr.events()
        assert validate_chrome_trace({"traceEvents": events}) > 0
        processes = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"n0", "n1"} <= processes
        if result.recoveries:
            # control-plane lanes: monitor + recovery under "master",
            # and the replacement node's own lane
            assert "master" in processes
            assert "n0~1" in processes


class TestTransportDrops:
    def test_partitioned_sender_counts_drops(self):
        from repro.dist.transport import InProcTransport

        tr = InProcTransport()
        got = []
        tr.subscribe("f", "receiver", got.append)
        tr.publish("f", "sender", "a")
        tr.drop_from("sender")
        tr.publish("f", "sender", "b")
        tr.publish("f", "sender", "c")
        assert [m.payload for m in got] == ["a"]
        assert tr.stats.drops == 2
        assert tr.stats.messages == 1
