"""Unit tests for the master node / HLS."""

import pytest

from repro.core import Instrumentation, TopologyError
from repro.dist import LocalTopology, MasterNode, ProcessorSpec
from repro.workloads import build_mulsum


def master_with_nodes(*caps):
    m = MasterNode()
    for i, c in enumerate(caps):
        m.register(LocalTopology(f"n{i}", (ProcessorSpec("cpu", c),)))
    return m


class TestPlan:
    def test_plan_covers_all_kernels(self):
        program, _ = build_mulsum()
        m = master_with_nodes(2, 2)
        plan = m.plan(program)
        assert set(plan.partition.assign) == set(program.kernels)
        assert set(plan.nodes()) == {"n0", "n1"}

    def test_plan_without_nodes_rejected(self):
        program, _ = build_mulsum()
        with pytest.raises(TopologyError):
            MasterNode().plan(program)

    def test_kernels_for_is_partition(self):
        program, _ = build_mulsum()
        m = master_with_nodes(2, 2)
        plan = m.plan(program)
        all_kernels = sorted(
            k for n in plan.nodes() for k in plan.kernels_for(n)
        )
        assert all_kernels == sorted(program.kernels)

    def test_weighted_plan_uses_instrumentation(self):
        program, _ = build_mulsum()
        m = master_with_nodes(2, 2)
        instr = Instrumentation()
        for _ in range(100):
            instr.record("mul2", 1e-6, 100e-6)
            instr.record("plus5", 1e-6, 100e-6)
        instr.record("init", 1e-6, 1e-6)
        instr.record("print", 1e-6, 1e-6)
        plan = m.plan(program, instr, method="kl")
        # the two heavy kernels should be spread for balance... or kept
        # together for traffic; either way the plan is valid and total
        loads = plan.partition.loads
        assert set(plan.partition.assign) == set(program.kernels)

    def test_describe(self):
        program, _ = build_mulsum()
        m = master_with_nodes(1)
        text = m.plan(program).describe()
        assert "n0:" in text and "mul2" in text


class TestRepartition:
    def test_changed_flag(self):
        program, _ = build_mulsum()
        m = master_with_nodes(2, 2)
        instr = Instrumentation()
        instr.record("mul2", 1e-6, 1e-6)
        plan1, changed1 = m.repartition(program, instr)
        assert changed1  # first plan is always a change
        plan2, changed2 = m.repartition(program, instr)
        assert not changed2  # same inputs -> same plan

    def test_stale_tracks_topology_epoch(self):
        program, _ = build_mulsum()
        m = master_with_nodes(2)
        assert m.stale()
        m.plan(program)
        assert not m.stale()
        m.register(LocalTopology("late", (ProcessorSpec("cpu", 4),)))
        assert m.stale()

    def test_unregister(self):
        m = master_with_nodes(2, 2)
        m.unregister("n0")
        assert m.topology.node_names() == ["n1"]
