"""Unit tests for the table-I machine profiles."""

import pytest

from repro.sim import CORE_I7_860, MACHINES, OPTERON_8218, machine_table
from repro.sim.machine import MachineProfile


class TestCapacityModel:
    def test_capacity_monotone_in_threads(self):
        for m in (CORE_I7_860, OPTERON_8218):
            caps = [m.capacity(t) for t in range(1, 12)]
            for a, b in zip(caps[:-1], caps[1:]):
                assert b >= a - 1e-12

    def test_per_thread_speed_decreases(self):
        for m in (CORE_I7_860, OPTERON_8218):
            speeds = [m.per_thread_speed(t) for t in range(1, 12)]
            for a, b in zip(speeds[:-1], speeds[1:]):
                assert b <= a + 1e-12

    def test_opteron_linear_to_8(self):
        assert OPTERON_8218.capacity(8) == pytest.approx(
            8 * OPTERON_8218.capacity(1), rel=1e-9
        )

    def test_opteron_saturates_past_cores(self):
        assert OPTERON_8218.capacity(9) == OPTERON_8218.capacity(8)

    def test_i7_turbo_single_core(self):
        """One active core runs above base clock (paper: the i7 'is able
        to increase the frequency of a single core')."""
        assert CORE_I7_860.capacity(1) > CORE_I7_860.relative_speed

    def test_i7_smt_adds_capacity(self):
        assert CORE_I7_860.capacity(8) > CORE_I7_860.capacity(4)
        # ... but far less than 2x (SMT, not real cores)
        assert CORE_I7_860.capacity(8) < 1.5 * CORE_I7_860.capacity(4)

    def test_i7_faster_per_core_than_opteron(self):
        """Calibrated from the standalone encoder: 19 s vs 30 s."""
        ratio = CORE_I7_860.capacity(1) / OPTERON_8218.capacity(1)
        assert ratio == pytest.approx(30 / 19, rel=0.10)

    def test_zero_threads(self):
        assert CORE_I7_860.capacity(0) == 0.0
        assert CORE_I7_860.per_thread_speed(0) == 0.0

    def test_speedup_normalized(self):
        assert OPTERON_8218.speedup(1) == pytest.approx(1.0)
        assert OPTERON_8218.speedup(4) == pytest.approx(4.0)


class TestTableI:
    def test_registry(self):
        assert MACHINES["core_i7"] is CORE_I7_860
        assert MACHINES["opteron"] is OPTERON_8218

    def test_table_contents(self):
        text = machine_table()
        assert "Intel Core i7 860 2,8 GHz" in text
        assert "AMD Opteron 8218 2,6 GHz" in text
        assert "Nehalem (Intel)" in text
        assert "Santa Rosa (AMD)" in text

    def test_core_counts_match_paper(self):
        assert CORE_I7_860.physical_cores == 4
        assert CORE_I7_860.logical_threads == 8
        assert OPTERON_8218.physical_cores == 8
        assert OPTERON_8218.logical_threads == 8

    def test_custom_profile(self):
        m = MachineProfile("x", "X", 2, 2, "arch", relative_speed=2.0)
        assert m.capacity(2) == 4.0
        assert m.per_thread_speed(4) == 1.0
