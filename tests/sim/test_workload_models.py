"""Unit tests for the abstract workload models (tables II/III constants)."""

import pytest

from repro.sim import paper_kmeans_model, paper_mjpeg_model
from repro.sim.workload import StageSpec, WorkloadModel


class TestPaperMJPEGModel:
    def test_table2_instance_counts(self):
        m = paper_mjpeg_model(50)
        assert m.stage("read").instances_per_age == 1
        assert m.stage_ages(m.stage("read")) == 51  # paper: 51 instances
        assert m.stage("ydct").instances_per_age == 1584
        assert m.stage("udct").instances_per_age == 396
        assert m.stage("vdct").instances_per_age == 396
        assert m.stage("vlc").instances_per_age == 1

    def test_table2_costs(self):
        m = paper_mjpeg_model()
        assert m.stage("ydct").kernel_time_us == pytest.approx(170.30)
        assert m.stage("ydct").dispatch_time_us == pytest.approx(3.07)
        assert m.stage("vlc").kernel_time_us == pytest.approx(2160.71)

    def test_total_work_magnitude(self):
        """Total kernel seconds ≈ the paper's ~19-21 s single-core i7
        encode."""
        total = paper_mjpeg_model(50).total_kernel_seconds()
        assert 15 < total < 26

    def test_dct_dominates(self):
        m = paper_mjpeg_model(50)
        dct = sum(
            m.stage(s).instances_per_age * m.stage(s).kernel_time_us * 50
            for s in ("ydct", "udct", "vdct")
        )
        assert dct / (m.total_kernel_seconds() * 1e6) > 0.9

    def test_dependencies(self):
        m = paper_mjpeg_model()
        assert ("read", 0) in m.stage("ydct").deps
        assert ("ydct", 0) in m.stage("vlc").deps
        assert ("read", -1) in m.stage("read").deps  # source chain


class TestPaperKMeansModel:
    def test_table3_instance_counts(self):
        m = paper_kmeans_model()
        assert m.stage("assign").instances_per_age == 200_000
        assert m.ages == 10  # -> 2,000,000 assigns total
        assert m.stage("refine").instances_per_age == 100
        assert m.stage_ages(m.stage("print")) == 11

    def test_table3_costs(self):
        m = paper_kmeans_model()
        assert m.stage("assign").dispatch_time_us == pytest.approx(4.07)
        assert m.stage("assign").kernel_time_us == pytest.approx(6.95)
        assert m.stage("init").kernel_time_us == pytest.approx(9829.0)

    def test_dispatch_heavy(self):
        """The defining property behind figure 10: assign's dispatch cost
        is a large fraction of its total cost."""
        s = paper_kmeans_model().stage("assign")
        ratio = s.dispatch_time_us / (s.dispatch_time_us + s.kernel_time_us)
        assert ratio > 0.3

    def test_loop_dependencies(self):
        m = paper_kmeans_model()
        assert ("refine", -1) in m.stage("assign").deps
        assert ("assign", 0) in m.stage("refine").deps


class TestModelHelpers:
    def test_totals(self):
        m = WorkloadModel(
            "m", 2,
            (StageSpec("a", 10, 100.0, 1.0),
             StageSpec("b", 1, 50.0, 2.0, ages=1)),
        )
        assert m.total_instances() == 21
        assert m.total_kernel_seconds() == pytest.approx(
            (10 * 100.0 * 2 + 50.0) * 1e-6
        )
        assert m.total_dispatch_seconds() == pytest.approx(
            (10 * 1.0 * 2 + 2.0) * 1e-6
        )

    def test_unknown_stage(self):
        m = paper_kmeans_model()
        with pytest.raises(KeyError):
            m.stage("ghost")
