"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.at(2.0, lambda: order.append("b"))
        loop.at(1.0, lambda: order.append("a"))
        loop.at(3.0, lambda: order.append("c"))
        end = loop.run()
        assert order == ["a", "b", "c"]
        assert end == 3.0

    def test_ties_break_by_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.at(1.0, lambda: order.append(1))
        loop.at(1.0, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_callbacks_can_schedule(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append(loop.now)
            loop.after(0.5, lambda: seen.append(loop.now))

        loop.at(1.0, first)
        loop.run()
        assert seen == [1.0, 1.5]

    def test_no_scheduling_into_past(self):
        loop = EventLoop()
        loop.at(5.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.at(1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.after(-1.0, lambda: None)

    def test_until_bound(self):
        loop = EventLoop()
        fired = []
        loop.at(1.0, lambda: fired.append(1))
        loop.at(10.0, lambda: fired.append(2))
        end = loop.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert len(loop) == 1  # unfired event remains

    def test_max_events(self):
        loop = EventLoop()
        for i in range(10):
            loop.at(float(i), lambda: None)
        loop.run(max_events=3)
        assert loop.events_processed == 3

    def test_deterministic(self):
        def build():
            loop = EventLoop()
            trace = []

            def recurse(depth):
                trace.append((round(loop.now, 6), depth))
                if depth < 5:
                    loop.after(0.1 * depth + 0.01, lambda: recurse(depth + 1))

            loop.at(0.0, lambda: recurse(0))
            loop.run()
            return trace

        assert build() == build()
