"""Tests for the simulated execution node — including the figure 9/10
shape assertions the reproduction stands on."""

import pytest

from repro.core import run_program
from repro.sim import (
    CORE_I7_860,
    OPTERON_8218,
    SimExecutionNode,
    StageSpec,
    WorkloadModel,
    model_from_instrumentation,
    paper_kmeans_model,
    paper_mjpeg_model,
    sweep_workers,
)


def tiny_model(instances=100, kernel_us=100.0, dispatch_us=1.0, ages=2):
    return WorkloadModel(
        "tiny", ages,
        (
            StageSpec("init", 1, 10.0, 10.0, ages=1),
            StageSpec("work", instances, kernel_us, dispatch_us,
                      deps=(("init", 0), ("work", -1))),
        ),
    )


class TestMechanics:
    def test_all_instances_execute(self):
        r = SimExecutionNode(tiny_model(), OPTERON_8218, 4).run()
        assert r.stages["work"].instances == 200
        assert r.stages["init"].instances == 1

    def test_conservation(self):
        """Total busy time is bounded by thread-count x makespan (the
        invariant that holds exactly under the sampled-speed model)."""
        for w in (1, 3, 8):
            r = SimExecutionNode(tiny_model(), OPTERON_8218, w).run()
            assert (r.worker_busy + r.analyzer_busy
                    <= (w + 1) * r.makespan + 1e-6)
            assert r.worker_busy <= w * r.makespan + 1e-6
            assert r.analyzer_busy <= r.makespan + 1e-6

    def test_serial_time_close_to_total_work(self):
        model = tiny_model(dispatch_us=0.0)
        r = SimExecutionNode(model, OPTERON_8218, 1, contention=0.0).run()
        # 1 worker + idle analyzer: makespan >= work / speed(threads)
        work = model.total_kernel_seconds()
        assert r.makespan >= work / OPTERON_8218.capacity(1) * 0.5
        assert r.makespan <= work / OPTERON_8218.per_thread_speed(2) * 1.5

    def test_deterministic(self):
        a = SimExecutionNode(tiny_model(), CORE_I7_860, 3).run()
        b = SimExecutionNode(tiny_model(), CORE_I7_860, 3).run()
        assert a.makespan == b.makespan

    def test_deadlock_detected(self):
        bad = WorkloadModel(
            "bad", 1,
            (StageSpec("a", 1, 1.0, 1.0, deps=(("b", 0),)),
             StageSpec("b", 1, 1.0, 1.0, deps=(("a", 0),))),
        )
        with pytest.raises(ValueError):
            SimExecutionNode(bad, OPTERON_8218, 1).run()

    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            SimExecutionNode(tiny_model(), OPTERON_8218, 0)

    def test_bad_analyzer_share(self):
        with pytest.raises(ValueError):
            SimExecutionNode(tiny_model(), OPTERON_8218, 1,
                             analyzer_share=1.5)

    def test_utilization_bounds(self):
        r = SimExecutionNode(tiny_model(), OPTERON_8218, 2).run()
        assert 0 <= r.worker_utilization <= 1.0 + 1e-9
        assert 0 <= r.analyzer_utilization <= 1.0 + 1e-9


class TestFigure9Shape:
    """MJPEG scales near-linearly with worker threads (both machines)."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        model = paper_mjpeg_model(50)
        return {
            m.name: sweep_workers(model, m)
            for m in (CORE_I7_860, OPTERON_8218)
        }

    def test_monotone_decreasing(self, sweeps):
        for series in sweeps.values():
            times = [r.makespan for r in series]
            for a, b in zip(times[:-1], times[1:]):
                assert b <= a * 1.02  # allow tiny non-monotonicity

    def test_opteron_near_linear_to_7(self, sweeps):
        times = [r.makespan for r in sweeps[OPTERON_8218.name]]
        speedup7 = times[0] / times[6]
        assert speedup7 > 5.5  # close to ideal 7

    def test_opteron_kink_at_8(self, sweeps):
        """The 8th worker shares the machine with the analyzer thread:
        the last step gains less than the ideal 8/7."""
        times = [r.makespan for r in sweeps[OPTERON_8218.name]]
        gain_7_to_8 = times[6] / times[7]
        assert gain_7_to_8 < 8 / 7

    def test_absolute_magnitudes_match_paper(self, sweeps):
        """Paper: standalone ~19 s (i7) / ~30 s (Opteron); P2G
        single-worker times land in the same range."""
        i7 = sweeps[CORE_I7_860.name][0].makespan
        opteron = sweeps[OPTERON_8218.name][0].makespan
        assert 12 < i7 < 26
        assert 22 < opteron < 42
        assert opteron > i7

    def test_i7_wins_at_low_threads(self, sweeps):
        for w in range(3):
            assert (sweeps[CORE_I7_860.name][w].makespan
                    < sweeps[OPTERON_8218.name][w].makespan)


class TestFigure10Shape:
    """K-means scales to ~4 workers, then the serial dependency analyzer
    saturates and more workers make it *slower* — the Opteron more so
    than the turbo-boosted i7."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        model = paper_kmeans_model()
        return {
            m.name: sweep_workers(model, m)
            for m in (CORE_I7_860, OPTERON_8218)
        }

    def test_scales_to_4(self, sweeps):
        for series in sweeps.values():
            times = [r.makespan for r in series]
            assert times[3] < times[0] / 2  # real gains up to 4 workers
            assert min(times) == min(times[:5])  # optimum at <= 5 workers

    def test_degrades_past_knee(self, sweeps):
        for series in sweeps.values():
            times = [r.makespan for r in series]
            assert times[7] > min(times) * 1.02

    def test_analyzer_saturates(self, sweeps):
        r8 = sweeps[OPTERON_8218.name][7]
        assert r8.analyzer_utilization > 0.9

    def test_opteron_suffers_more_than_i7(self, sweeps):
        """Paper: 'the Opteron suffers more than the Core i7 when the
        dependency analyzer saturates a core'."""

        def degradation(series):
            times = [r.makespan for r in series]
            return times[7] / min(times)

        assert degradation(sweeps[OPTERON_8218.name]) > degradation(
            sweeps[CORE_I7_860.name]
        )

    def test_contention_ablation(self):
        """Without queue contention the post-knee degradation vanishes."""
        model = paper_kmeans_model()
        with_c = sweep_workers(model, OPTERON_8218, [4, 8])
        without = sweep_workers(model, OPTERON_8218, [4, 8], contention=0.0)
        assert with_c[1].makespan > with_c[0].makespan
        assert without[1].makespan <= without[0].makespan * 1.01


class TestCalibratedModel:
    def test_model_from_real_run(self):
        from repro.workloads import build_kmeans

        program, _ = build_kmeans(n=40, k=4, iterations=3,
                                  granularity="point")
        result = run_program(program, workers=2, timeout=120)
        model = model_from_instrumentation(
            program, result.instrumentation, ages=3
        )
        names = {s.name for s in model.stages}
        assert {"init", "assign", "refine", "print"} <= names
        assign = model.stage("assign")
        assert assign.instances_per_age == 40
        assert assign.kernel_time_us > 0
        # deps derived from the final graph: assign needs init + refine(-1)
        assert ("refine", -1) in assign.deps
        sim = SimExecutionNode(model, OPTERON_8218, 2).run()
        assert sim.makespan > 0
