"""Tests for the multi-node cluster simulator and offline partition
evaluation."""

import pytest

from repro.sim import (
    CORE_I7_860,
    NetworkModel,
    OPTERON_8218,
    SimCluster,
    SimClusterNode,
    SimExecutionNode,
    StageSpec,
    WorkloadModel,
    best_assignment,
    evaluate_assignment,
    paper_mjpeg_model,
)


def two_nodes(workers=4):
    return [
        SimClusterNode("a", OPTERON_8218, workers),
        SimClusterNode("b", OPTERON_8218, workers),
    ]


def pipeline_model(instances=64, stages=3, kernel_us=100.0):
    specs = [StageSpec("s0", 1, 10.0, 5.0, ages=1)]
    for i in range(1, stages + 1):
        specs.append(
            StageSpec(
                f"s{i}", instances, kernel_us, 1.0,
                deps=((f"s{i-1}", 0),),
                ages=1,
            )
        )
    return WorkloadModel("pipeline", 1, tuple(specs))


def all_on(node: str, model: WorkloadModel) -> dict[str, str]:
    return {s.name: node for s in model.stages}


class TestMechanics:
    def test_single_node_matches_simnode(self):
        """A one-node cluster must agree with SimExecutionNode."""
        model = paper_mjpeg_model(5)
        single = SimExecutionNode(model, OPTERON_8218, 4).run()
        cluster = SimCluster(
            model, [SimClusterNode("only", OPTERON_8218, 4)],
            all_on("only", model),
        ).run()
        assert cluster.makespan == pytest.approx(single.makespan, rel=0.05)
        assert cluster.cross_node_transfers == 0

    def test_validates_assignment(self):
        model = pipeline_model()
        with pytest.raises(ValueError, match="without a node"):
            SimCluster(model, two_nodes(), {"s0": "a"})
        with pytest.raises(ValueError, match="unknown nodes"):
            SimCluster(model, two_nodes(),
                       all_on("ghost", model))

    def test_cross_node_traffic_counted(self):
        model = pipeline_model(stages=2)
        assignment = {"s0": "a", "s1": "a", "s2": "b"}
        result = evaluate_assignment(model, two_nodes(), assignment)
        assert result.cross_node_transfers >= 1
        assert result.network_busy > 0

    def test_network_cost_slows_split_pipelines(self):
        """With a slow network, splitting a tight pipeline across nodes
        must be worse than colocating it."""
        model = pipeline_model(stages=3, instances=32)
        slow_net = NetworkModel(latency_s=5e-3, bytes_per_s=1e6,
                                event_bytes=4096)
        together = evaluate_assignment(
            model, two_nodes(), all_on("a", model), slow_net
        )
        split = evaluate_assignment(
            model, two_nodes(),
            {"s0": "a", "s1": "a", "s2": "b", "s3": "a"}, slow_net
        )
        assert split.makespan > together.makespan

    def test_two_nodes_beat_one_for_parallel_stages(self):
        """Independent heavy stages benefit from a second machine."""
        model = WorkloadModel(
            "fanout", 1,
            (
                StageSpec("src", 1, 10.0, 5.0, ages=1),
                StageSpec("left", 64, 500.0, 1.0, deps=(("src", 0),),
                          ages=1),
                StageSpec("right", 64, 500.0, 1.0, deps=(("src", 0),),
                          ages=1),
            ),
        )
        nodes = [
            SimClusterNode("a", OPTERON_8218, 2),
            SimClusterNode("b", OPTERON_8218, 2),
        ]
        one = evaluate_assignment(model, nodes, all_on("a", model))
        spread = evaluate_assignment(
            model, nodes, {"src": "a", "left": "a", "right": "b"}
        )
        assert spread.makespan < one.makespan

    def test_deterministic(self):
        model = pipeline_model()
        a = evaluate_assignment(model, two_nodes(),
                                {"s0": "a", "s1": "a", "s2": "b",
                                 "s3": "b"})
        b = evaluate_assignment(model, two_nodes(),
                                {"s0": "a", "s1": "a", "s2": "b",
                                 "s3": "b"})
        assert a.makespan == b.makespan


class TestBestAssignment:
    def test_ranks_candidates(self):
        model = pipeline_model(stages=3, instances=32)
        slow_net = NetworkModel(latency_s=5e-3, bytes_per_s=1e6,
                                event_bytes=4096)
        candidates = [
            all_on("a", model),
            {"s0": "a", "s1": "a", "s2": "b", "s3": "a"},
            {"s0": "a", "s1": "b", "s2": "a", "s3": "b"},
        ]
        winner, result, results = best_assignment(
            model, two_nodes(), candidates, slow_net
        )
        assert winner == all_on("a", model)  # tight pipeline, slow net
        assert result.makespan == min(r.makespan for r in results)
        assert len(results) == 3

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            best_assignment(pipeline_model(), two_nodes(), [])

    def test_heterogeneous_nodes(self):
        """A faster machine should attract the heavy stage."""
        model = pipeline_model(stages=1, instances=128, kernel_us=200.0)
        nodes = [
            SimClusterNode("fast", CORE_I7_860, 4),
            SimClusterNode("slow", OPTERON_8218, 1),
        ]
        on_fast = evaluate_assignment(
            model, nodes, {"s0": "fast", "s1": "fast"}
        )
        on_slow = evaluate_assignment(
            model, nodes, {"s0": "fast", "s1": "slow"}
        )
        assert on_fast.makespan < on_slow.makespan
