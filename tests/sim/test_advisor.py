"""Tests for the configuration advisor (section V-A's simulator use)."""

import pytest

from repro.sim import (
    CORE_I7_860,
    OPTERON_8218,
    coarsen_model,
    compare_machines,
    granularity_what_if,
    paper_kmeans_model,
    paper_mjpeg_model,
    recommend_workers,
)


class TestRecommendWorkers:
    def test_kmeans_knee_near_4(self):
        """The advisor must find figure 10's knee offline."""
        rec = recommend_workers(paper_kmeans_model(), OPTERON_8218,
                                max_workers=8)
        assert 3 <= rec.knee <= 5
        assert rec.analyzer_bound  # it also diagnoses *why*

    def test_mjpeg_wants_all_cores(self):
        rec = recommend_workers(paper_mjpeg_model(20), OPTERON_8218,
                                max_workers=8)
        assert rec.best_workers >= 7
        assert not rec.analyzer_bound
        assert rec.speedup() > 4.0

    def test_series_covers_range(self):
        rec = recommend_workers(paper_mjpeg_model(5), CORE_I7_860,
                                max_workers=6)
        assert [w for w, _t in rec.series] == list(range(1, 7))

    def test_knee_never_exceeds_best(self):
        rec = recommend_workers(paper_kmeans_model(), CORE_I7_860,
                                max_workers=8)
        assert rec.knee <= rec.best_workers


class TestCompareMachines:
    def test_ranks_machines(self):
        recs = compare_machines(
            paper_mjpeg_model(10),
            {"i7": CORE_I7_860, "opteron": OPTERON_8218},
            max_workers=8,
        )
        assert set(recs) == {"i7", "opteron"}
        # with all 8 workers usable, the 8 real Opteron cores win MJPEG
        assert (recs["opteron"].best_makespan
                < recs["i7"].best_makespan * 1.1)


class TestCoarsenModel:
    def test_preserves_total_work(self):
        model = paper_kmeans_model()
        coarse = coarsen_model(model, "assign", 100)
        assert coarse.total_kernel_seconds() == pytest.approx(
            model.total_kernel_seconds(), rel=1e-9
        )
        assert coarse.stage("assign").instances_per_age == 2000
        # dispatch load shrinks by the factor
        assert coarse.total_dispatch_seconds() < (
            model.total_dispatch_seconds() / 50
        )

    def test_unknown_stage(self):
        with pytest.raises(KeyError):
            coarsen_model(paper_kmeans_model(), "ghost", 2)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            coarsen_model(paper_kmeans_model(), "assign", 0)

    def test_factor_one_identity_counts(self):
        model = paper_kmeans_model()
        same = coarsen_model(model, "assign", 1)
        assert (same.stage("assign").instances_per_age
                == model.stage("assign").instances_per_age)


class TestGranularityWhatIf:
    def test_coarsening_fixes_the_kmeans_knee(self):
        """The §VIII-B prediction, evaluated offline: coarsening assign
        removes the analyzer bottleneck, so the recommended worker count
        rises and the makespan falls."""
        results = granularity_what_if(
            paper_kmeans_model(), OPTERON_8218, "assign",
            factors=(1, 64), max_workers=8,
        )
        fine, coarse = results[0].recommendation, results[1].recommendation
        assert coarse.best_makespan < fine.best_makespan
        assert coarse.knee > fine.knee
        assert fine.analyzer_bound and not coarse.analyzer_bound
