"""Tests for the figure-5 workload (the paper's exact published values)."""

import numpy as np
import pytest

from repro.core import run_program
from repro.workloads import build_mulsum, expected_series


class TestPaperValues:
    def test_published_series(self):
        """The paper: "The print kernel writes {10, 11, 12, 13, 14},
        {20, 22, 24, 26, 28} for the first age and {25, 27, 29, 31, 33},
        {50, 54, 58, 62, 66} for the second." """
        program, sink = build_mulsum()
        run_program(program, workers=4, max_age=1, timeout=60)
        assert sink[0][0].tolist() == [10, 11, 12, 13, 14]
        assert sink[0][1].tolist() == [20, 22, 24, 26, 28]
        assert sink[1][0].tolist() == [25, 27, 29, 31, 33]
        assert sink[1][1].tolist() == [50, 54, 58, 62, 66]

    def test_expected_series_matches_recurrence(self):
        series = expected_series(3)
        for age in range(2):
            m, p = series[age]
            assert np.array_equal(p, m * 2)
            assert np.array_equal(series[age + 1][0], p + 5)

    def test_custom_values(self):
        program, sink = build_mulsum(values=(1, 2))
        run_program(program, workers=2, max_age=1, timeout=60)
        assert sink[0][0].tolist() == [1, 2]
        assert sink[0][1].tolist() == [2, 4]
        assert sink[1][0].tolist() == [7, 9]

    def test_echo_receives_lines(self):
        lines = []
        program, _ = build_mulsum(echo=lines.append)
        run_program(program, workers=1, max_age=0, timeout=60)
        assert "10 11 12 13 14" in lines
        assert "20 22 24 26 28" in lines

    def test_external_sink(self):
        sink = {}
        program, returned = build_mulsum(sink=sink)
        assert returned is sink

    def test_modulo_wraps(self):
        program, sink = build_mulsum(modulo=100)
        run_program(program, workers=2, max_age=2, timeout=60)
        expected = expected_series(3, modulo=100)
        for age in expected:
            assert np.array_equal(sink[age][0], expected[age][0])
            assert np.array_equal(sink[age][1], expected[age][1])

    @pytest.mark.parametrize("max_age", [0, 1, 5])
    def test_runs_exactly_requested_ages(self, max_age):
        program, sink = build_mulsum()
        run_program(program, workers=2, max_age=max_age, timeout=60)
        assert sorted(sink) == list(range(max_age + 1))
