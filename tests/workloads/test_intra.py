"""Tests for the wavefront intra-prediction workload (the paper's
section-III motivating example)."""

import numpy as np
import pytest

from repro.core import run_program
from repro.workloads import IntraConfig, build_intra, intra_baseline
from repro.workloads.intra import predict_and_reconstruct

CFG = IntraConfig(width=96, height=64, frames=2)


class TestPredictor:
    def test_no_neighbours_uses_mid_grey(self):
        cur = np.full((8, 8), 128, np.uint8)
        recon, levels = predict_and_reconstruct(cur, None, None, qstep=8)
        assert np.array_equal(recon, cur)  # pred 128, residual 0
        assert not levels.any()

    def test_left_neighbour_column_used(self):
        cur = np.full((8, 8), 100, np.uint8)
        left = np.zeros((8, 8), np.uint8)
        left[:, -1] = 100  # right-most column is the reference
        recon, levels = predict_and_reconstruct(cur, left, None, qstep=8)
        assert np.array_equal(recon, cur)
        assert not levels.any()

    def test_empty_arrays_treated_as_absent(self):
        cur = np.full((8, 8), 128, np.uint8)
        empty = np.zeros((8, 0), np.uint8)
        recon, _ = predict_and_reconstruct(cur, empty, empty[:0], qstep=8)
        assert np.array_equal(recon, cur)

    def test_quantization_bounds_error(self):
        rng = np.random.default_rng(0)
        cur = rng.integers(0, 256, (8, 8)).astype(np.uint8)
        recon, _ = predict_and_reconstruct(cur, None, None, qstep=8)
        assert np.abs(recon.astype(int) - cur.astype(int)).max() <= 4 + 1


class TestWavefrontExecution:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_bit_identical_to_raster_baseline(self, workers):
        program, sink = build_intra(config=CFG)
        result = run_program(program, workers=workers, timeout=120)
        assert result.reason == "idle"
        baseline = intra_baseline(config=CFG)
        for age in range(CFG.frames):
            assert np.array_equal(sink.recon[age], baseline[age])

    def test_instance_counts(self):
        program, _ = build_intra(config=CFG)
        result = run_program(program, workers=4, timeout=120)
        bh, bw = CFG.blocks
        assert result.stats["intra"].instances == bh * bw * CFG.frames
        assert result.stats["read"].instances == CFG.frames + 1
        assert result.stats["quality"].instances == CFG.frames

    def test_wavefront_exposes_parallelism(self):
        """The ready queue must hold multiple blocks at once — the
        anti-diagonal the analyzer discovers from the stencil deps."""
        cfg = IntraConfig(width=128, height=128, frames=1)
        program, _ = build_intra(config=cfg)
        node_result = run_program(program, workers=1, timeout=120)
        # diagonal width of a 16x16 block grid is 16; with one worker the
        # queue must have grown well beyond a serial chain's 1
        assert node_result.ready_high_water >= 8

    def test_quality_reasonable(self):
        program, sink = build_intra(config=CFG)
        run_program(program, workers=4, timeout=120)
        assert sink.mean_psnr() > 25.0  # DC-only intra is crude but sane

    def test_levels_field_complete(self):
        program, _ = build_intra(config=CFG)
        result = run_program(program, workers=4, timeout=120)
        for age in range(CFG.frames):
            assert result.fields["levels"].is_complete(age)

    def test_frame_shape_validated(self):
        with pytest.raises(ValueError):
            build_intra([np.zeros((8, 8), np.uint8)], CFG)

    def test_config_validated(self):
        with pytest.raises(ValueError):
            IntraConfig(width=100, height=64)
