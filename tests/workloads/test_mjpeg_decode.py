"""Tests for the P2G MJPEG decoder workload (encode→decode round trip)."""

import numpy as np
import pytest

from repro.core import run_program
from repro.media import decode_jpeg, psnr, split_frames, synthetic_sequence
from repro.workloads import (
    MJPEGConfig,
    build_mjpeg,
    build_mjpeg_decoder,
    mjpeg_baseline,
)

CFG = MJPEGConfig(width=96, height=64, frames=3)


@pytest.fixture(scope="module")
def encoded():
    clip = synthetic_sequence(CFG.frames, CFG.width, CFG.height, CFG.seed)
    return clip, split_frames(mjpeg_baseline(clip, CFG))


class TestRoundTrip:
    def test_p2g_decoder_matches_reference_decoder(self, encoded):
        _clip, jpegs = encoded
        program, sink = build_mjpeg_decoder(jpegs, CFG)
        result = run_program(program, workers=4, timeout=300)
        assert result.reason == "idle"
        assert len(sink.frames) == CFG.frames
        for i, data in enumerate(jpegs):
            ref = decode_jpeg(data).frame
            got = sink.frames[i]
            assert np.array_equal(got.y, ref.y)
            assert np.array_equal(got.u, ref.u)
            assert np.array_equal(got.v, ref.v)

    def test_end_to_end_p2g_encode_then_p2g_decode(self, encoded):
        clip, _ = encoded
        enc_prog, enc_sink = build_mjpeg(clip, CFG)
        run_program(enc_prog, workers=4, timeout=300)
        dec_prog, dec_sink = build_mjpeg_decoder(
            split_frames(enc_sink.stream()), CFG
        )
        run_program(dec_prog, workers=4, timeout=300)
        for i, frame in enumerate(clip):
            assert psnr(dec_sink.frames[i].y, frame.y) > 28.0

    def test_instance_counts(self, encoded):
        _clip, jpegs = encoded
        program, _ = build_mjpeg_decoder(jpegs, CFG)
        result = run_program(program, workers=4, timeout=300)
        stats = result.stats
        luma = (CFG.height // 8) * (CFG.width // 8)
        chroma = (CFG.height // 16) * (CFG.width // 16)
        assert stats["vld"].instances == CFG.frames + 1  # EOF age
        assert stats["yidct"].instances == luma * CFG.frames
        assert stats["uidct"].instances == chroma * CFG.frames
        assert stats["vidct"].instances == chroma * CFG.frames
        assert stats["write"].instances == CFG.frames

    def test_deterministic_across_workers(self, encoded):
        _clip, jpegs = encoded
        outputs = []
        for workers in (1, 6):
            program, sink = build_mjpeg_decoder(jpegs, CFG)
            run_program(program, workers=workers, timeout=300)
            outputs.append(sink.frames)
        for age in outputs[0]:
            assert np.array_equal(outputs[0][age].y, outputs[1][age].y)


class TestValidation:
    def test_size_mismatch_detected(self, encoded):
        _clip, jpegs = encoded
        bad_cfg = MJPEGConfig(width=160, height=96, frames=3)
        program, _ = build_mjpeg_decoder(jpegs, bad_cfg)
        with pytest.raises(Exception, match="size"):
            run_program(program, workers=2, timeout=300)

    def test_empty_stream_is_quiescent(self):
        program, sink = build_mjpeg_decoder([], CFG)
        result = run_program(program, workers=2, timeout=60)
        assert result.reason == "idle"
        assert sink.frames == {}
