"""Tests for the K-means workload (figure 7, table III arithmetic)."""

import numpy as np
import pytest

from repro.core import run_program
from repro.workloads import (
    build_kmeans,
    generate_dataset,
    kmeans_baseline,
)


class TestEquivalenceWithBaseline:
    @pytest.mark.parametrize("granularity", ["pair", "point"])
    def test_trajectory_matches_lloyds(self, granularity):
        program, sink = build_kmeans(
            n=80, k=6, iterations=4, granularity=granularity
        )
        run_program(program, workers=4, timeout=120)
        base = kmeans_baseline(n=80, k=6, iterations=4)
        assert sorted(sink.history) == sorted(base.history)
        for age in base.history:
            assert np.allclose(sink.history[age], base.history[age])

    def test_granularities_agree_with_each_other(self):
        p1, s1 = build_kmeans(n=50, k=4, iterations=3, granularity="pair")
        p2, s2 = build_kmeans(n=50, k=4, iterations=3, granularity="point")
        run_program(p1, workers=2, timeout=120)
        run_program(p2, workers=2, timeout=120)
        for age in s1.history:
            assert np.allclose(s1.history[age], s2.history[age])

    def test_deterministic_across_worker_counts(self):
        results = []
        for workers in (1, 4):
            program, sink = build_kmeans(n=60, k=5, iterations=3)
            run_program(program, workers=workers, timeout=120)
            results.append(sink.history)
        for age in results[0]:
            assert np.array_equal(results[0][age], results[1][age])


class TestInstanceArithmetic:
    """Table III: assign = n*k per iteration (pair), refine = k per
    iteration, print = iterations + 1, init = 1."""

    def test_pair_counts(self):
        n, k, iters = 30, 4, 3
        program, _ = build_kmeans(n=n, k=k, iterations=iters,
                                  granularity="pair")
        result = run_program(program, workers=2, timeout=120)
        stats = result.stats
        assert stats["init"].instances == 1
        assert stats["assign"].instances == n * k * iters
        assert stats["refine"].instances == k * iters
        assert stats["print"].instances == iters + 1

    def test_point_counts(self):
        n, k, iters = 30, 4, 3
        program, _ = build_kmeans(n=n, k=k, iterations=iters,
                                  granularity="point")
        result = run_program(program, workers=2, timeout=120)
        assert result.stats["assign"].instances == n * iters

    def test_paper_scale_formula(self):
        """At the paper's n=2000, K=100, 10 iterations the pair formula
        gives 2,000,000 — the paper reports 2,024,251 (≈1.2% more,
        a partially dispatched final age); refine/print match exactly."""
        n, k, iters = 2000, 100, 10
        assert n * k * iters == 2_000_000
        assert abs(2_024_251 - n * k * iters) / (n * k * iters) < 0.013
        assert k * iters == 1000  # paper: refine = 1000
        assert iters + 1 == 11  # paper: print = 11


class TestDataset:
    def test_deterministic(self):
        a, pa = generate_dataset(50, seed=9)
        b, pb = generate_dataset(50, seed=9)
        assert np.array_equal(a, b)
        assert np.array_equal(pa, pb)

    def test_dims(self):
        pts, _ = generate_dataset(10, dims=5)
        assert pts.shape == (10, 5)


class TestResultSink:
    def test_history_and_inertia(self):
        program, sink = build_kmeans(n=40, k=3, iterations=2)
        run_program(program, workers=2, timeout=120)
        points, _ = generate_dataset(40)
        assert sink.iterations == 2
        assert sink.final_centroids().shape == (3, 2)
        assert sink.assignments(points).shape == (40,)
        assert sink.inertia(points) > 0

    def test_inertia_never_increases_much(self):
        """Lloyd's iteration is monotone non-increasing in inertia."""
        base = kmeans_baseline(n=100, k=5, iterations=6)
        points, _ = generate_dataset(100)
        inertias = []
        for age in sorted(base.history):
            c = base.history[age]
            d = np.linalg.norm(points[:, None] - c[None], axis=2)
            owner = np.argmin(d, axis=1)
            inertias.append(float(np.sum((points - c[owner]) ** 2)))
        for a, b in zip(inertias[:-1], inertias[1:]):
            assert b <= a + 1e-9

    def test_empty_cluster_keeps_centroid(self):
        """A centroid far from all data must survive unchanged."""
        program, sink = build_kmeans(n=20, k=19, iterations=2)
        run_program(program, workers=2, timeout=120)
        base = kmeans_baseline(n=20, k=19, iterations=2)
        for age in base.history:
            assert np.allclose(sink.history[age], base.history[age])

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            build_kmeans(granularity="frame")
