"""Tests for the MJPEG workload (figure 8, table II arithmetic)."""

import numpy as np
import pytest

from repro.core import run_program
from repro.media import decode_jpeg, psnr, split_frames, synthetic_sequence
from repro.workloads import MJPEGConfig, build_mjpeg, mjpeg_baseline

CFG = MJPEGConfig(width=96, height=64, frames=3)


def run_mjpeg(cfg=CFG, workers=4, frames=None, **kwargs):
    program, sink = build_mjpeg(frames, cfg)
    result = run_program(program, workers=workers, timeout=600, **kwargs)
    return result, sink


class TestOutputCorrectness:
    def test_byte_identical_to_standalone_baseline(self):
        frames = synthetic_sequence(CFG.frames, CFG.width, CFG.height,
                                    CFG.seed)
        _, sink = run_mjpeg(frames=frames)
        assert sink.stream() == mjpeg_baseline(frames, CFG)

    def test_every_frame_decodes(self):
        frames = synthetic_sequence(CFG.frames, CFG.width, CFG.height,
                                    CFG.seed)
        _, sink = run_mjpeg(frames=frames)
        jpegs = split_frames(sink.stream())
        assert len(jpegs) == CFG.frames
        for i, data in enumerate(jpegs):
            dec = decode_jpeg(data)
            assert psnr(dec.frame.y, frames[i].y) > 28.0

    def test_frames_in_age_order_despite_parallelism(self):
        frames = synthetic_sequence(CFG.frames, CFG.width, CFG.height,
                                    CFG.seed)
        reference = [  # per-frame baseline
            mjpeg_baseline([f], MJPEGConfig(width=CFG.width,
                                            height=CFG.height, frames=1))
            for f in frames
        ]
        _, sink = run_mjpeg(frames=frames, workers=8)
        assert split_frames(sink.stream()) == reference

    def test_aan_dct_also_decodes(self):
        cfg = MJPEGConfig(width=96, height=64, frames=2, dct_method="aan")
        _, sink = run_mjpeg(cfg)
        clip = synthetic_sequence(2, 96, 64, cfg.seed)
        for i, data in enumerate(split_frames(sink.stream())):
            assert psnr(decode_jpeg(data).frame.y, clip[i].y) > 28.0


class TestInstanceArithmetic:
    """Table II geometry: CIF -> 1584 luma + 396 + 396 chroma blocks per
    frame; read runs frames+1 times (EOF)."""

    def test_counts_small(self):
        result, _ = run_mjpeg()
        stats = result.stats
        luma = (64 // 8) * (96 // 8)  # 96x64 -> 96 blocks
        chroma = (32 // 8) * (48 // 8)  # 24 blocks
        assert stats["read"].instances == CFG.frames + 1
        assert stats["ydct"].instances == luma * CFG.frames
        assert stats["udct"].instances == chroma * CFG.frames
        assert stats["vdct"].instances == chroma * CFG.frames
        assert stats["vlc"].instances == CFG.frames

    def test_cif_block_geometry(self):
        cfg = MJPEGConfig()  # CIF defaults
        assert cfg.luma_blocks == 1584  # paper: 1584 macro-blocks of Y
        assert cfg.chroma_blocks == 396  # paper: 396 U and V

    def test_cif_single_frame_counts(self):
        cfg = MJPEGConfig(frames=1)
        program, sink = build_mjpeg(config=cfg)
        result = run_program(program, workers=8, timeout=600)
        stats = result.stats
        assert stats["ydct"].instances == 1584
        assert stats["udct"].instances == 396
        assert stats["vdct"].instances == 396
        assert stats["read"].instances == 2
        assert sink.frame_count() == 1


class TestConfig:
    def test_rejects_non_mcu_dimensions(self):
        with pytest.raises(ValueError):
            MJPEGConfig(width=100, height=64)

    def test_rejects_mismatched_frames(self):
        frames = synthetic_sequence(1, 32, 32)
        with pytest.raises(ValueError):
            build_mjpeg(frames, MJPEGConfig(width=96, height=64, frames=1))

    def test_sink_stream_ordering(self):
        from repro.workloads.mjpeg import MJPEGSink

        sink = MJPEGSink(CFG)
        sink.frames[1] = b"\x01"
        sink.frames[0] = b"\x00"
        assert sink.stream() == b"\x00\x01"
        assert sink.frame_count() == 2
