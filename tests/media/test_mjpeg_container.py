"""Unit tests for the MJPEG stream container."""

import io

import pytest

from repro.media.jpeg import encode_jpeg
from repro.media.mjpeg import MJPEGReader, MJPEGWriter, split_frames
from repro.media.yuv import synthetic_sequence


def jpegs(n=3, w=32, h=32):
    return [encode_jpeg(f, 70) for f in synthetic_sequence(n, w, h)]


class TestWriter:
    def test_memory_stream(self):
        frames = jpegs(2)
        w = MJPEGWriter()
        for f in frames:
            w.write_frame(f)
        assert w.frames_written == 2
        assert w.bytes_written == sum(len(f) for f in frames)
        assert w.getvalue() == b"".join(frames)

    def test_file_target(self, tmp_path):
        path = tmp_path / "out.mjpeg"
        frames = jpegs(2)
        with MJPEGWriter(path) as w:
            for f in frames:
                w.write_frame(f)
        assert path.read_bytes() == b"".join(frames)

    def test_existing_handle(self):
        buf = io.BytesIO()
        w = MJPEGWriter(buf)
        w.write_frame(jpegs(1)[0])
        assert buf.getvalue()

    def test_rejects_incomplete_jpeg(self):
        w = MJPEGWriter()
        with pytest.raises(ValueError):
            w.write_frame(b"\xff\xd8 no EOI")
        with pytest.raises(ValueError):
            w.write_frame(b"no SOI \xff\xd9")


class TestReaderAndSplit:
    def test_split_roundtrip(self):
        frames = jpegs(4)
        assert split_frames(b"".join(frames)) == frames

    def test_reader_iterates(self):
        frames = jpegs(3)
        reader = MJPEGReader(b"".join(frames))
        assert list(reader) == frames
        assert reader.count() == 3

    def test_reader_from_file(self, tmp_path):
        path = tmp_path / "clip.mjpeg"
        frames = jpegs(2)
        path.write_bytes(b"".join(frames))
        assert list(MJPEGReader(path)) == frames

    def test_single_frame(self):
        (f,) = jpegs(1)
        assert split_frames(f) == [f]

    def test_empty_stream(self):
        assert split_frames(b"") == []

    def test_truncated_stream_rejected(self):
        (f,) = jpegs(1)
        with pytest.raises(ValueError):
            split_frames(f[:-2])  # EOI removed

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            split_frames(b"\x00\x01\x02\x03")
