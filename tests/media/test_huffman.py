"""Unit + property tests for JPEG Huffman coding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.media.bitstream import BitReader, BitWriter
from repro.media.huffman import (
    HuffmanTable,
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    decode_block,
    encode_block,
    magnitude_category,
)


class TestTableConstruction:
    def test_standard_table_sizes(self):
        assert len(STD_DC_LUMA) == 12
        assert len(STD_DC_CHROMA) == 12
        assert len(STD_AC_LUMA) == 162
        assert len(STD_AC_CHROMA) == 162

    def test_codes_are_prefix_free(self):
        for table in (STD_DC_LUMA, STD_AC_LUMA, STD_AC_CHROMA):
            codes = [table.encode(s) for s in table.values]
            as_strings = [format(c, f"0{n}b") for c, n in codes]
            for i, a in enumerate(as_strings):
                for j, b in enumerate(as_strings):
                    if i != j:
                        assert not b.startswith(a)

    def test_symbol_roundtrip_through_bits(self):
        for table in (STD_DC_LUMA, STD_AC_LUMA):
            w = BitWriter(stuffing=False)
            for symbol in table.values:
                table.write_symbol(w, symbol)
            w.flush()
            r = BitReader(w.getvalue(), stuffing=False)
            for symbol in table.values:
                assert table.read_symbol(r) == symbol

    def test_bits_values_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTable(bits=[1] + [0] * 15, values=[1, 2])

    def test_wrong_bits_length_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTable(bits=[0] * 10, values=[])

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTable(bits=[0, 2] + [0] * 14, values=[5, 5])

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValueError):
            STD_DC_LUMA.encode(99)


class TestMagnitude:
    @pytest.mark.parametrize("value,cat", [
        (0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2),
        (4, 3), (7, 3), (255, 8), (-255, 8), (1023, 10),
    ])
    def test_categories(self, value, cat):
        assert magnitude_category(value) == cat


class TestBlockCoding:
    def _roundtrip(self, zz, prev_dc=0):
        w = BitWriter(stuffing=True)
        dc = encode_block(w, zz, prev_dc, STD_DC_LUMA, STD_AC_LUMA)
        w.flush()
        r = BitReader(w.getvalue(), stuffing=True)
        decoded, dc2 = decode_block(r, prev_dc, STD_DC_LUMA, STD_AC_LUMA)
        assert dc == dc2
        return decoded

    def test_zero_block(self):
        zz = np.zeros(64, dtype=np.int64)
        assert np.array_equal(self._roundtrip(zz), zz)

    def test_dc_only(self):
        zz = np.zeros(64, dtype=np.int64)
        zz[0] = -37
        assert np.array_equal(self._roundtrip(zz), zz)

    def test_long_zero_runs_use_zrl(self):
        zz = np.zeros(64, dtype=np.int64)
        zz[40] = 3  # 39 zeros -> two ZRL symbols + run
        assert np.array_equal(self._roundtrip(zz), zz)

    def test_trailing_nonzero_no_eob(self):
        zz = np.zeros(64, dtype=np.int64)
        zz[63] = -1
        assert np.array_equal(self._roundtrip(zz), zz)

    def test_dc_prediction_chain(self):
        w = BitWriter(stuffing=True)
        blocks = []
        dc = 0
        rng = np.random.default_rng(7)
        for _ in range(5):
            zz = np.zeros(64, dtype=np.int64)
            zz[0] = int(rng.integers(-200, 200))
            zz[5] = int(rng.integers(-50, 50))
            blocks.append(zz)
            dc = encode_block(w, zz, dc, STD_DC_LUMA, STD_AC_LUMA)
        w.flush()
        r = BitReader(w.getvalue(), stuffing=True)
        dc = 0
        for zz in blocks:
            decoded, dc = decode_block(r, dc, STD_DC_LUMA, STD_AC_LUMA)
            assert np.array_equal(decoded, zz)

    def test_out_of_range_dc_rejected(self):
        zz = np.zeros(64, dtype=np.int64)
        zz[0] = 5000
        w = BitWriter()
        with pytest.raises(ValueError):
            encode_block(w, zz, 0, STD_DC_LUMA, STD_AC_LUMA)

    def test_out_of_range_ac_rejected(self):
        zz = np.zeros(64, dtype=np.int64)
        zz[1] = 2000
        w = BitWriter()
        with pytest.raises(ValueError):
            encode_block(w, zz, 0, STD_DC_LUMA, STD_AC_LUMA)

    @given(hnp.arrays(np.int64, 64, elements=st.integers(-1023, 1023)))
    @settings(max_examples=60)
    def test_roundtrip_random_blocks(self, zz):
        zz[0] = int(np.clip(zz[0], -1500, 1500))
        assert np.array_equal(self._roundtrip(zz.copy()), zz)

    @given(
        hnp.arrays(np.int64, 64, elements=st.integers(-1023, 1023)),
        st.integers(-1000, 1000),
    )
    @settings(max_examples=30)
    def test_roundtrip_with_chroma_tables(self, zz, prev):
        w = BitWriter(stuffing=True)
        dc = encode_block(w, zz, prev, STD_DC_CHROMA, STD_AC_CHROMA)
        w.flush()
        r = BitReader(w.getvalue(), stuffing=True)
        decoded, dc2 = decode_block(r, prev, STD_DC_CHROMA, STD_AC_CHROMA)
        assert np.array_equal(decoded, zz)
        assert dc2 == dc == int(zz[0])
