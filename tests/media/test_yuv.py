"""Unit tests for YUV frames, synthetic sequence and file I/O."""

import math

import numpy as np
import pytest

from repro.media.yuv import (
    YUVFrame,
    psnr,
    read_yuv_file,
    synthetic_sequence,
    write_yuv_file,
)


class TestYUVFrame:
    def test_shapes_validated(self):
        y = np.zeros((16, 16), np.uint8)
        with pytest.raises(ValueError):
            YUVFrame(y, np.zeros((16, 16), np.uint8),
                     np.zeros((8, 8), np.uint8))

    def test_properties(self):
        f = YUVFrame(
            np.zeros((32, 48), np.uint8),
            np.zeros((16, 24), np.uint8),
            np.zeros((16, 24), np.uint8),
        )
        assert f.width == 48 and f.height == 32

    def test_bytes_roundtrip(self):
        f = synthetic_sequence(1, 32, 16)[0]
        data = f.tobytes()
        assert len(data) == YUVFrame.frame_size(32, 16)
        g = YUVFrame.frombytes(data, 32, 16)
        assert np.array_equal(f.y, g.y)
        assert np.array_equal(f.u, g.u)
        assert np.array_equal(f.v, g.v)

    def test_truncated_frame_rejected(self):
        with pytest.raises(ValueError):
            YUVFrame.frombytes(b"\x00" * 10, 32, 16)


class TestSyntheticSequence:
    def test_deterministic(self):
        a = synthetic_sequence(3, 64, 32, seed=5)
        b = synthetic_sequence(3, 64, 32, seed=5)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.y, fb.y)

    def test_seed_changes_content(self):
        a = synthetic_sequence(1, 64, 32, seed=1)[0]
        b = synthetic_sequence(1, 64, 32, seed=2)[0]
        assert not np.array_equal(a.y, b.y)

    def test_frames_differ_over_time(self):
        frames = synthetic_sequence(2, 64, 32)
        assert not np.array_equal(frames[0].y, frames[1].y)

    def test_cif_default_geometry(self):
        f = synthetic_sequence(1)[0]
        assert (f.width, f.height) == (352, 288)
        assert f.u.shape == (144, 176)

    def test_has_texture(self):
        """The clip must exercise AC coefficients (non-flat blocks)."""
        f = synthetic_sequence(1, 64, 64)[0]
        block = f.y[:8, :8].astype(float)
        assert block.std() > 1.0

    def test_zero_frames(self):
        assert synthetic_sequence(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            synthetic_sequence(-1)


class TestFileIO:
    def test_write_read_roundtrip(self, tmp_path):
        frames = synthetic_sequence(3, 32, 16)
        path = tmp_path / "clip.yuv"
        n = write_yuv_file(path, frames)
        assert n == 3 * YUVFrame.frame_size(32, 16)
        back = list(read_yuv_file(path, 32, 16))
        assert len(back) == 3
        for a, b in zip(frames, back):
            assert np.array_equal(a.y, b.y)

    def test_max_frames(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv_file(path, synthetic_sequence(5, 32, 16))
        assert len(list(read_yuv_file(path, 32, 16, max_frames=2))) == 2


class TestPSNR:
    def test_identical_is_inf(self):
        a = np.full((8, 8), 100.0)
        assert psnr(a, a) == math.inf

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 16.0)  # mse = 256 -> psnr = 10*log10(255^2/256)
        assert psnr(a, b) == pytest.approx(
            10 * math.log10(255**2 / 256), rel=1e-9
        )

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 255, (16, 16))
        b = rng.uniform(0, 255, (16, 16))
        assert psnr(a, b) == pytest.approx(psnr(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))
