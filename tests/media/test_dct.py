"""Unit + property tests for the three DCT implementations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.media.dct import (
    aan_dct2,
    dct2_blocks,
    dct_matrix,
    idct2,
    idct2_blocks,
    matrix_dct2,
    naive_dct2,
)

BLOCKS = hnp.arrays(
    dtype=np.float64,
    shape=(8, 8),
    elements=st.floats(-128, 127, allow_nan=False),
)


class TestBasisMatrix:
    def test_orthonormal(self):
        m = dct_matrix()
        assert np.allclose(m @ m.T, np.eye(8), atol=1e-12)

    def test_first_row_constant(self):
        m = dct_matrix()
        assert np.allclose(m[0], m[0, 0])


class TestEquivalence:
    @given(BLOCKS)
    @settings(max_examples=25, deadline=None)
    def test_naive_equals_matrix(self, block):
        assert np.allclose(naive_dct2(block), matrix_dct2(block), atol=1e-9)

    @given(BLOCKS)
    @settings(max_examples=25, deadline=None)
    def test_aan_equals_matrix(self, block):
        assert np.allclose(aan_dct2(block), matrix_dct2(block), atol=1e-5)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(0)
        batch = rng.uniform(-128, 127, (6, 8, 8))
        out = dct2_blocks(batch, "matrix")
        for i in range(6):
            assert np.array_equal(out[i], matrix_dct2(batch[i]))

    def test_methods_dispatch(self):
        rng = np.random.default_rng(1)
        b = rng.uniform(-10, 10, (2, 8, 8))
        for method in ("naive", "matrix", "aan"):
            out = dct2_blocks(b, method)
            assert out.shape == (2, 8, 8)
        with pytest.raises(ValueError):
            dct2_blocks(b, "fft")


class TestRoundTrip:
    @given(BLOCKS)
    @settings(max_examples=25, deadline=None)
    def test_idct_inverts_dct(self, block):
        assert np.allclose(idct2(matrix_dct2(block)), block, atol=1e-9)

    def test_idct_blocks_batch(self):
        rng = np.random.default_rng(2)
        batch = rng.uniform(-128, 127, (3, 4, 8, 8))
        coeffs = dct2_blocks(batch)
        assert np.allclose(idct2_blocks(coeffs), batch, atol=1e-9)


class TestDCTProperties:
    def test_constant_block_concentrates_in_dc(self):
        block = np.full((8, 8), 100.0)
        coeffs = matrix_dct2(block)
        assert coeffs[0, 0] == pytest.approx(800.0)  # 8 * mean
        coeffs[0, 0] = 0
        assert np.allclose(coeffs, 0, atol=1e-10)

    @given(BLOCKS, BLOCKS)
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, a, b):
        lhs = matrix_dct2(a + b)
        rhs = matrix_dct2(a) + matrix_dct2(b)
        assert np.allclose(lhs, rhs, atol=1e-9)

    @given(BLOCKS)
    @settings(max_examples=20, deadline=None)
    def test_parseval_energy_preserved(self, block):
        assert np.sum(block**2) == pytest.approx(
            np.sum(matrix_dct2(block) ** 2), rel=1e-9, abs=1e-6
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            naive_dct2(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            aan_dct2(np.zeros((8, 4)))
        with pytest.raises(ValueError):
            idct2_blocks(np.zeros((2, 8, 4)))
