"""Unit + property tests for zig-zag ordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.media.zigzag import (
    INVERSE_ZIGZAG_ORDER,
    ZIGZAG_ORDER,
    inverse_zigzag,
    zigzag,
)


class TestOrder:
    def test_is_permutation(self):
        assert sorted(ZIGZAG_ORDER.tolist()) == list(range(64))

    def test_known_prefix(self):
        """First entries of the standard JPEG scan (spec figure 5)."""
        assert ZIGZAG_ORDER[:10].tolist() == [
            0, 1, 8, 16, 9, 2, 3, 10, 17, 24,
        ]

    def test_last_is_bottom_right(self):
        assert ZIGZAG_ORDER[-1] == 63

    def test_inverse_is_argsort(self):
        assert np.array_equal(
            ZIGZAG_ORDER[INVERSE_ZIGZAG_ORDER], np.arange(64)
        )

    def test_adjacent_entries_are_grid_neighbours(self):
        """The scan walks the grid one step at a time (diagonal moves
        included)."""
        for a, b in zip(ZIGZAG_ORDER[:-1], ZIGZAG_ORDER[1:]):
            ra, ca = divmod(int(a), 8)
            rb, cb = divmod(int(b), 8)
            assert abs(ra - rb) <= 1 and abs(ca - cb) <= 1


class TestRoundTrip:
    @given(hnp.arrays(np.int64, (8, 8), elements=st.integers(-1000, 1000)))
    @settings(max_examples=30)
    def test_involution(self, block):
        assert np.array_equal(inverse_zigzag(zigzag(block)), block)

    def test_batch(self):
        rng = np.random.default_rng(0)
        batch = rng.integers(-100, 100, (5, 8, 8))
        zz = zigzag(batch)
        assert zz.shape == (5, 64)
        assert np.array_equal(inverse_zigzag(zz), batch)

    def test_frequency_ordering(self):
        """Zig-zag position 0 is DC; neighbours of DC come right after."""
        block = np.zeros((8, 8))
        block[0, 0] = 99
        assert zigzag(block)[0] == 99

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            zigzag(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_zigzag(np.zeros(32))
