"""Unit + property tests for bit-level I/O with JPEG stuffing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.media.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_msb_first(self):
        w = BitWriter(stuffing=False)
        w.write_bits(0b1, 1)
        w.write_bits(0b0000000, 7)
        assert w.getvalue() == b"\x80"

    def test_cross_byte_value(self):
        w = BitWriter(stuffing=False)
        w.write_bits(0xABC, 12)
        w.flush()  # pads the final nibble with 1-bits
        assert w.getvalue() == bytes([0xAB, 0xCF])

    def test_stuffing_inserts_zero_after_ff(self):
        w = BitWriter(stuffing=True)
        w.write_bits(0xFF, 8)
        assert w.getvalue() == b"\xff\x00"

    def test_no_stuffing_mode(self):
        w = BitWriter(stuffing=False)
        w.write_bits(0xFF, 8)
        assert w.getvalue() == b"\xff"

    def test_flush_pads_with_ones(self):
        w = BitWriter(stuffing=False)
        w.write_bits(0, 3)
        w.flush()
        assert w.getvalue() == bytes([0b00011111])

    def test_flush_on_boundary_is_noop(self):
        w = BitWriter(stuffing=False)
        w.write_bits(0x5A, 8)
        w.flush()
        assert w.getvalue() == b"\x5a"

    def test_value_range_checked(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)
        with pytest.raises(ValueError):
            w.write_bits(-1, 2)

    def test_zero_bits_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_length == 0


class TestBitReader:
    def test_reads_what_writer_wrote(self):
        w = BitWriter(stuffing=True)
        w.write_bits(0b101, 3)
        w.write_bits(0xFFEE, 16)
        w.flush()
        r = BitReader(w.getvalue(), stuffing=True)
        assert r.read_bits(3) == 0b101
        assert r.read_bits(16) == 0xFFEE

    def test_unstuffing(self):
        r = BitReader(b"\xff\x00\x12", stuffing=True)
        assert r.read_bits(8) == 0xFF
        assert r.read_bits(8) == 0x12

    def test_eof(self):
        r = BitReader(b"\xab")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_marker_in_stream_raises(self):
        r = BitReader(b"\xff\xd9", stuffing=True)
        with pytest.raises(EOFError):
            r.read_bits(16)

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining() == 16
        r.read_bits(5)
        assert r.bits_remaining() == 11


class TestRoundTripProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_arbitrary_sequences(self, pieces):
        w = BitWriter(stuffing=True)
        expected = []
        for value, nbits in pieces:
            value &= (1 << nbits) - 1
            w.write_bits(value, nbits)
            expected.append((value, nbits))
        w.flush()
        r = BitReader(w.getvalue(), stuffing=True)
        for value, nbits in expected:
            assert r.read_bits(value.bit_length() and nbits or nbits) == value

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60)
    def test_byte_roundtrip_with_stuffing(self, data):
        w = BitWriter(stuffing=True)
        for b in data:
            w.write_bits(b, 8)
        out = w.getvalue()
        # stuffed stream never contains 0xFF followed by a non-zero byte
        for i in range(len(out) - 1):
            if out[i] == 0xFF:
                assert out[i + 1] == 0x00
        r = BitReader(out, stuffing=True)
        assert bytes(r.read_bits(8) for _ in data) == data
