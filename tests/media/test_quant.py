"""Unit tests for JPEG quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.media.quant import (
    STD_CHROMA_QTABLE,
    STD_LUMA_QTABLE,
    dequantize,
    quantize,
    scale_qtable,
)


class TestStandardTables:
    def test_luma_known_corners(self):
        assert STD_LUMA_QTABLE[0, 0] == 16
        assert STD_LUMA_QTABLE[7, 7] == 99

    def test_chroma_known_corners(self):
        assert STD_CHROMA_QTABLE[0, 0] == 17
        assert STD_CHROMA_QTABLE[7, 7] == 99

    def test_in_baseline_range(self):
        for t in (STD_LUMA_QTABLE, STD_CHROMA_QTABLE):
            assert t.min() >= 1 and t.max() <= 255


class TestQualityScaling:
    def test_quality_50_is_identity(self):
        assert np.array_equal(scale_qtable(STD_LUMA_QTABLE, 50),
                              STD_LUMA_QTABLE)

    def test_monotone_in_quality(self):
        """Higher quality -> finer (smaller) steps, everywhere."""
        prev = scale_qtable(STD_LUMA_QTABLE, 1)
        for q in (10, 25, 50, 75, 95):
            cur = scale_qtable(STD_LUMA_QTABLE, q)
            assert (cur <= prev).all()
            prev = cur

    def test_quality_100_mostly_ones(self):
        t = scale_qtable(STD_LUMA_QTABLE, 100)
        assert t.max() <= 2  # (q*0 + 50)//100 rounding keeps some 1s/2s
        assert t.min() >= 1

    def test_clamped_to_255(self):
        assert scale_qtable(STD_LUMA_QTABLE, 1).max() == 255

    @pytest.mark.parametrize("q", [0, 101, -5])
    def test_rejects_out_of_range(self, q):
        with pytest.raises(ValueError):
            scale_qtable(STD_LUMA_QTABLE, q)


class TestQuantize:
    def test_round_half_cases(self):
        q = np.full((8, 8), 10)
        coeffs = np.full((8, 8), 14.0)
        assert quantize(coeffs, q)[0, 0] == 1
        coeffs = np.full((8, 8), 16.0)
        assert quantize(coeffs, q)[0, 0] == 2

    def test_dtype_is_int32(self):
        out = quantize(np.zeros((8, 8)), STD_LUMA_QTABLE)
        assert out.dtype == np.int32

    @given(hnp.arrays(np.float64, (8, 8),
                      elements=st.floats(-1000, 1000, allow_nan=False)))
    @settings(max_examples=30)
    def test_dequantize_bounds_error(self, coeffs):
        """|dequantize(quantize(x)) - x| <= q/2 elementwise."""
        q = STD_LUMA_QTABLE
        rec = dequantize(quantize(coeffs, q), q)
        assert (np.abs(rec - coeffs) <= q / 2 + 1e-9).all()

    def test_batch_shapes(self):
        batch = np.zeros((3, 2, 8, 8))
        assert quantize(batch, STD_LUMA_QTABLE).shape == (3, 2, 8, 8)
