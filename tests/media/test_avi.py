"""Tests for the MJPG AVI container."""

import struct

import pytest

from repro.media.avi import AVIInfo, read_avi, write_avi
from repro.media.jpeg import decode_jpeg, encode_jpeg
from repro.media.yuv import psnr, synthetic_sequence


def jpegs(n=3, w=64, h=48):
    return [encode_jpeg(f, 70) for f in synthetic_sequence(n, w, h)]


class TestWrite:
    def test_riff_layout(self):
        data = write_avi(None, jpegs(2), 64, 48, fps=25)
        assert data[:4] == b"RIFF"
        assert data[8:12] == b"AVI "
        # RIFF size covers the rest of the file
        (size,) = struct.unpack_from("<I", data, 4)
        assert size == len(data) - 8
        assert b"MJPG" in data[:200]
        assert b"movi" in data
        assert b"idx1" in data

    def test_writes_file(self, tmp_path):
        path = tmp_path / "clip.avi"
        data = write_avi(path, jpegs(1), 64, 48)
        assert path.read_bytes() == data

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            write_avi(None, [], 64, 48)

    def test_rejects_non_jpeg(self):
        with pytest.raises(ValueError):
            write_avi(None, [b"not a jpeg"], 64, 48)

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            write_avi(None, jpegs(1), 64, 48, fps=0)

    def test_odd_sized_frames_padded_even(self):
        frames = jpegs(2)
        # make one frame odd-length by a COM segment of odd size
        odd = frames[0]
        if len(odd) % 2 == 0:
            odd = odd[:-2] + b"\xff\xfe\x00\x03\x00" + b"\xff\xd9"
        data = write_avi(None, [odd, frames[1]], 64, 48)
        _info, back = read_avi(data)
        assert back[0] == odd  # padding removed on read


class TestRead:
    def test_roundtrip(self):
        frames = jpegs(4)
        info, back = read_avi(write_avi(None, frames, 64, 48, fps=30))
        assert back == frames
        assert info == AVIInfo(64, 48, pytest.approx(30.0, rel=1e-3),
                               4, "MJPG")

    def test_frames_decode(self):
        clip = synthetic_sequence(2, 64, 48)
        frames = [encode_jpeg(f, 80) for f in clip]
        _info, back = read_avi(write_avi(None, frames, 64, 48))
        for i, data in enumerate(back):
            dec = decode_jpeg(data)
            assert psnr(dec.frame.y, clip[i].y) > 30.0

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            read_avi(b"MPEG not avi")

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "c.avi"
        write_avi(path, jpegs(2), 64, 48)
        info, back = read_avi(path)
        assert info.frame_count == 2
