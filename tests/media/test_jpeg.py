"""Unit tests for the JPEG encoder/decoder."""

import numpy as np
import pytest

from repro.media.jpeg import (
    blocks_to_plane,
    decode_jpeg,
    encode_jpeg,
    pad_plane,
    plane_to_blocks,
    qtables_for_quality,
    quantize_plane,
)
from repro.media.yuv import YUVFrame, psnr, synthetic_sequence


def frame(w=96, h=64, seed=3):
    return synthetic_sequence(1, w, h, seed)[0]


class TestBlockHelpers:
    def test_plane_blocks_roundtrip(self):
        plane = np.arange(32 * 16).reshape(16, 32)
        blocks = plane_to_blocks(plane)
        assert blocks.shape == (2, 4, 8, 8)
        assert np.array_equal(blocks_to_plane(blocks), plane)

    def test_block_content(self):
        plane = np.arange(16 * 16).reshape(16, 16)
        blocks = plane_to_blocks(plane)
        assert np.array_equal(blocks[0, 1], plane[0:8, 8:16])

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            plane_to_blocks(np.zeros((10, 16)))

    def test_pad_plane_replicates_edges(self):
        plane = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        padded = pad_plane(plane, 8)
        assert padded.shape == (8, 8)
        assert padded[0, 7] == 2
        assert padded[7, 0] == 3
        assert padded[7, 7] == 4

    def test_pad_noop_when_aligned(self):
        plane = np.zeros((16, 16), np.uint8)
        assert pad_plane(plane, 8) is plane


class TestEncode:
    def test_produces_jfif_markers(self):
        data = encode_jpeg(frame())
        assert data[:2] == b"\xff\xd8"  # SOI
        assert data[-2:] == b"\xff\xd9"  # EOI
        assert b"JFIF\x00" in data[:32]

    def test_higher_quality_larger_file(self):
        f = frame()
        sizes = [len(encode_jpeg(f, q)) for q in (20, 50, 80, 95)]
        assert sizes == sorted(sizes)

    def test_quantize_plane_shape(self):
        qy, _ = qtables_for_quality(75)
        q = quantize_plane(frame().y.astype(float), qy)
        assert q.shape == (8, 12, 8, 8)
        assert q.dtype == np.int32


class TestDecodeRoundTrip:
    def test_psnr_reasonable_at_q75(self):
        f = frame()
        dec = decode_jpeg(encode_jpeg(f, 75))
        assert psnr(dec.frame.y, f.y) > 30.0
        assert psnr(dec.frame.u, f.u) > 30.0
        assert psnr(dec.frame.v, f.v) > 30.0

    def test_quality_improves_psnr(self):
        f = frame()
        scores = [
            psnr(decode_jpeg(encode_jpeg(f, q)).frame.y, f.y)
            for q in (10, 50, 90)
        ]
        assert scores == sorted(scores)

    def test_header_fields_roundtrip(self):
        f = frame()
        dec = decode_jpeg(encode_jpeg(f, 75))
        assert (dec.width, dec.height) == (f.width, f.height)
        assert dec.sampling == ((2, 2), (1, 1), (1, 1))
        qy, qc = qtables_for_quality(75)
        assert np.array_equal(dec.qtables[0], qy)
        assert np.array_equal(dec.qtables[1], qc)

    def test_non_mcu_aligned_dimensions(self):
        """Arbitrary sizes go through pad_plane; decode crops back."""
        y = np.tile(np.arange(60, dtype=np.uint8), (44, 1))
        u = np.full((22, 30), 90, np.uint8)
        v = np.full((22, 30), 160, np.uint8)
        f = YUVFrame(y, u, v)
        dec = decode_jpeg(encode_jpeg(f, 85))
        assert dec.frame.y.shape == (44, 60)
        assert psnr(dec.frame.y, y) > 30.0

    def test_flat_frame_compresses_tightly(self):
        y = np.full((64, 64), 128, np.uint8)
        u = np.full((32, 32), 128, np.uint8)
        v = np.full((32, 32), 128, np.uint8)
        data = encode_jpeg(YUVFrame(y, u, v), 75)
        dec = decode_jpeg(data)
        assert np.array_equal(dec.frame.y, y)
        assert len(data) < 1200  # headers dominate

    def test_gray_extremes_clip_correctly(self):
        y = np.zeros((16, 16), np.uint8)
        y[:8] = 255
        f = YUVFrame(y, np.full((8, 8), 128, np.uint8),
                     np.full((8, 8), 128, np.uint8))
        dec = decode_jpeg(encode_jpeg(f, 95))
        assert dec.frame.y.min() >= 0 and dec.frame.y.max() <= 255
        assert psnr(dec.frame.y, y) > 25.0


class TestDecodeErrors:
    def test_not_a_jpeg(self):
        with pytest.raises(ValueError):
            decode_jpeg(b"\x00\x01\x02")

    def test_truncated_headers(self):
        data = encode_jpeg(frame())
        with pytest.raises(Exception):
            decode_jpeg(data[:20])

    def test_progressive_rejected(self):
        data = bytearray(encode_jpeg(frame()))
        idx = data.find(b"\xff\xc0")
        data[idx + 1] = 0xC2  # pretend SOF2 (progressive)
        with pytest.raises(ValueError):
            decode_jpeg(bytes(data))
