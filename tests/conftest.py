"""Suite-wide fixtures.

Several fault-tolerance tests intentionally drive runs into
``NodeFailureError``/``StallError``, which now dump flight-recorder
artifacts.  Unless a test (or CI) chose a destination explicitly, route
the dumps into a per-test temporary directory so expected failures
don't litter the working tree.
"""

import pytest


@pytest.fixture(autouse=True)
def _flight_dir_default(tmp_path, monkeypatch):
    import os

    if not os.environ.get("P2G_FLIGHT_DIR") and not os.environ.get(
        "CHAOS_REPRO_DIR"
    ):
        monkeypatch.setenv("P2G_FLIGHT_DIR", str(tmp_path / "flight"))
