"""Tests for the ``python -m repro`` command-line driver."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.media import split_frames, synthetic_sequence, write_yuv_file

MULSUM = """
int64[] m_data age;
int64[] p_data age;

init:
  local int64[] values;
  %{
    for i in range(5):
        put(values, i + 10, i)
  %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  age_limit 2;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;

plus5:
  age a;
  index x;
  age_limit 2;
  fetch value = p_data(a)[x];
  %{ value += 5 %}
  store m_data(a+1)[x] = value;

print:
  age a;
  age_limit 2;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{ print("age", a, list(int(v) for v in p)) %}
"""


@pytest.fixture
def mulsum_file(tmp_path):
    path = tmp_path / "mulsum.p2g"
    path.write_text(MULSUM)
    return str(path)


class TestRunCommand:
    def test_runs_to_idle(self, mulsum_file, capsys):
        rc = main(["run", mulsum_file, "-w", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "idle" in out
        assert "age 0 [20, 22, 24, 26, 28]" in out
        assert "mul2" in out  # instrumentation table

    def test_max_age_flag(self, mulsum_file, capsys):
        rc = main(["run", mulsum_file, "-a", "1", "-w", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "age 1" in out
        assert "age 2" not in out


class TestGraphCommand:
    def test_final_ascii(self, mulsum_file, capsys):
        assert main(["graph", mulsum_file]) == 0
        out = capsys.readouterr().out
        assert "(mul2) -> plus5" in out

    def test_intermediate(self, mulsum_file, capsys):
        assert main(["graph", mulsum_file, "--view", "intermediate"]) == 0
        out = capsys.readouterr().out
        assert "[m_data]" in out

    def test_dcdag_dot(self, mulsum_file, capsys):
        assert main(
            ["graph", mulsum_file, "--view", "dcdag", "--dot",
             "--max-age", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "mul2" in out


class TestMJPEGCommand:
    def test_synthetic_encode(self, tmp_path, capsys):
        out_path = tmp_path / "clip.mjpeg"
        rc = main([
            "mjpeg", str(out_path), "--width", "64", "--height", "64",
            "--frames", "2", "-w", "2",
        ])
        assert rc == 0
        data = out_path.read_bytes()
        assert len(split_frames(data)) == 2

    def test_yuv_input(self, tmp_path, capsys):
        clip = synthetic_sequence(3, 64, 64)
        yuv = tmp_path / "in.yuv"
        write_yuv_file(yuv, clip)
        out_path = tmp_path / "out.mjpeg"
        rc = main([
            "mjpeg", str(out_path), "-i", str(yuv),
            "--width", "64", "--height", "64", "--frames", "3",
        ])
        assert rc == 0
        assert len(split_frames(out_path.read_bytes())) == 3


class TestKMeansCommand:
    def test_prints_centroids(self, capsys):
        rc = main([
            "kmeans", "-n", "40", "-k", "3", "--iterations", "2",
            "--show", "3", "-w", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "centroid 0:" in out
        assert "assign" in out


class TestAdviseCommand:
    def test_kmeans_advice(self, capsys):
        rc = main([
            "advise", "kmeans", "--machines", "opteron",
            "--max-workers", "6",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "provision" in out
        assert "ANALYZER-BOUND" in out
        assert "what-if" in out

    def test_mjpeg_not_analyzer_bound(self, capsys):
        rc = main([
            "advise", "mjpeg", "--frames", "10",
            "--machines", "core_i7", "--max-workers", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ANALYZER-BOUND" not in out


class TestSimulateCommand:
    def test_sweep_output(self, capsys):
        rc = main([
            "simulate", "mjpeg", "--frames", "10", "--max-workers", "4",
            "--machines", "opteron",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "8-way AM" in out
        assert "workers" in out


class TestObservabilityFlags:
    """--trace / --metrics / --metrics-json across the subcommands."""

    def test_mjpeg_trace_is_schema_valid(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "out.json"
        rc = main([
            "mjpeg", str(tmp_path / "clip.mjpeg"),
            "--width", "32", "--height", "32", "--frames", "2",
            "-w", "2", "--trace", str(trace),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) > 0
        meta = {(e["name"], e["args"]["name"])
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert ("thread_name", "worker0") in meta  # per-worker lanes
        assert ("thread_name", "analyzer") in meta
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()

    def test_run_metrics_table_and_json(self, mulsum_file, tmp_path,
                                        capsys):
        import json

        mpath = tmp_path / "metrics.json"
        rc = main(["run", mulsum_file, "-w", "2", "--metrics",
                   "--metrics-json", str(mpath)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "instances.executed" in out  # the --metrics table
        doc = json.loads(mpath.read_text())
        assert doc["instances.executed"]["value"] > 0
        assert doc["ready.wait_s"]["type"] == "histogram"

    def test_cluster_trace_has_per_node_lanes(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "cluster.json"
        rc = main(["cluster", "mulsum", "--nodes", "2", "-w", "2",
                   "--max-age", "2", "--trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) > 0
        processes = {e["args"]["name"] for e in doc["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"node0", "node1"} <= processes


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestClusterCommand:
    def test_fault_free_run(self, capsys):
        code = main(["cluster", "mulsum", "--nodes", "2", "-w", "2",
                     "--max-age", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster mulsum on 2 node(s): idle" in out
        assert "output: 3 ages" in out

    def test_fail_node_kill_recovers(self, capsys):
        code = main([
            "cluster", "mulsum", "--nodes", "2", "-w", "2",
            "--fail-node", "node0:kill:2",
            "--heartbeat-interval", "0.01",
            "--heartbeat-timeout", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "idle" in out
        assert "recovered node0 -> node0~1" in out

    def test_chaos_seed_is_accepted(self, capsys):
        code = main([
            "cluster", "mulsum", "--nodes", "3", "-w", "2",
            "--chaos-seed", "5",
            "--heartbeat-interval", "0.01",
            "--heartbeat-timeout", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # either the seeded fault fired and was recovered, or its trigger
        # lay beyond the run's instance count — both are clean exits
        assert ("recovered" in out) or ("no scheduled fault fired" in out)

    def test_parser_rejects_bad_fault_spec(self):
        from repro.core import RuntimeStateError

        with pytest.raises(RuntimeStateError):
            main(["cluster", "mulsum", "--fail-node", "node0:explode"])

    def test_stall_fault_detected_via_progress_timeout(self, capsys):
        code = main([
            "cluster", "mulsum", "--nodes", "2", "-w", "2",
            "--fail-node", "node0:stall:2",
            "--heartbeat-interval", "0.01",
            "--progress-timeout", "0.15",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered node0 -> node0~1" in out
        assert "no progress" in out
