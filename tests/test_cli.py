"""Tests for the ``python -m repro`` command-line driver."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.media import split_frames, synthetic_sequence, write_yuv_file

MULSUM = """
int64[] m_data age;
int64[] p_data age;

init:
  local int64[] values;
  %{
    for i in range(5):
        put(values, i + 10, i)
  %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  age_limit 2;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;

plus5:
  age a;
  index x;
  age_limit 2;
  fetch value = p_data(a)[x];
  %{ value += 5 %}
  store m_data(a+1)[x] = value;

print:
  age a;
  age_limit 2;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{ print("age", a, list(int(v) for v in p)) %}
"""


@pytest.fixture
def mulsum_file(tmp_path):
    path = tmp_path / "mulsum.p2g"
    path.write_text(MULSUM)
    return str(path)


class TestRunCommand:
    def test_runs_to_idle(self, mulsum_file, capsys):
        rc = main(["run", mulsum_file, "-w", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "idle" in out
        assert "age 0 [20, 22, 24, 26, 28]" in out
        assert "mul2" in out  # instrumentation table

    def test_max_age_flag(self, mulsum_file, capsys):
        rc = main(["run", mulsum_file, "-a", "1", "-w", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "age 1" in out
        assert "age 2" not in out


class TestGraphCommand:
    def test_final_ascii(self, mulsum_file, capsys):
        assert main(["graph", mulsum_file]) == 0
        out = capsys.readouterr().out
        assert "(mul2) -> plus5" in out

    def test_intermediate(self, mulsum_file, capsys):
        assert main(["graph", mulsum_file, "--view", "intermediate"]) == 0
        out = capsys.readouterr().out
        assert "[m_data]" in out

    def test_dcdag_dot(self, mulsum_file, capsys):
        assert main(
            ["graph", mulsum_file, "--view", "dcdag", "--dot",
             "--max-age", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "mul2" in out


class TestMJPEGCommand:
    def test_synthetic_encode(self, tmp_path, capsys):
        out_path = tmp_path / "clip.mjpeg"
        rc = main([
            "mjpeg", str(out_path), "--width", "64", "--height", "64",
            "--frames", "2", "-w", "2",
        ])
        assert rc == 0
        data = out_path.read_bytes()
        assert len(split_frames(data)) == 2

    def test_yuv_input(self, tmp_path, capsys):
        clip = synthetic_sequence(3, 64, 64)
        yuv = tmp_path / "in.yuv"
        write_yuv_file(yuv, clip)
        out_path = tmp_path / "out.mjpeg"
        rc = main([
            "mjpeg", str(out_path), "-i", str(yuv),
            "--width", "64", "--height", "64", "--frames", "3",
        ])
        assert rc == 0
        assert len(split_frames(out_path.read_bytes())) == 3


class TestKMeansCommand:
    def test_prints_centroids(self, capsys):
        rc = main([
            "kmeans", "-n", "40", "-k", "3", "--iterations", "2",
            "--show", "3", "-w", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "centroid 0:" in out
        assert "assign" in out


class TestAdviseCommand:
    def test_kmeans_advice(self, capsys):
        rc = main([
            "advise", "kmeans", "--machines", "opteron",
            "--max-workers", "6",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "provision" in out
        assert "ANALYZER-BOUND" in out
        assert "what-if" in out

    def test_mjpeg_not_analyzer_bound(self, capsys):
        rc = main([
            "advise", "mjpeg", "--frames", "10",
            "--machines", "core_i7", "--max-workers", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ANALYZER-BOUND" not in out


class TestSimulateCommand:
    def test_sweep_output(self, capsys):
        rc = main([
            "simulate", "mjpeg", "--frames", "10", "--max-workers", "4",
            "--machines", "opteron",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "8-way AM" in out
        assert "workers" in out


class TestObservabilityFlags:
    """--trace / --metrics / --metrics-json across the subcommands."""

    def test_mjpeg_trace_is_schema_valid(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "out.json"
        rc = main([
            "mjpeg", str(tmp_path / "clip.mjpeg"),
            "--width", "32", "--height", "32", "--frames", "2",
            "-w", "2", "--trace", str(trace),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) > 0
        meta = {(e["name"], e["args"]["name"])
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert ("thread_name", "worker0") in meta  # per-worker lanes
        assert ("thread_name", "analyzer") in meta
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()

    def test_run_metrics_table_and_json(self, mulsum_file, tmp_path,
                                        capsys):
        import json

        mpath = tmp_path / "metrics.json"
        rc = main(["run", mulsum_file, "-w", "2", "--metrics",
                   "--metrics-json", str(mpath)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "instances.executed" in out  # the --metrics table
        doc = json.loads(mpath.read_text())
        assert doc["instances.executed"]["value"] > 0
        assert doc["ready.wait_s"]["type"] == "histogram"

    def test_cluster_trace_has_per_node_lanes(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "cluster.json"
        rc = main(["cluster", "mulsum", "--nodes", "2", "-w", "2",
                   "--max-age", "2", "--trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) > 0
        processes = {e["args"]["name"] for e in doc["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"node0", "node1"} <= processes


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestClusterCommand:
    def test_fault_free_run(self, capsys):
        code = main(["cluster", "mulsum", "--nodes", "2", "-w", "2",
                     "--max-age", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster mulsum on 2 node(s): idle" in out
        assert "output: 3 ages" in out

    def test_fail_node_kill_recovers(self, capsys):
        code = main([
            "cluster", "mulsum", "--nodes", "2", "-w", "2",
            "--fail-node", "node0:kill:2",
            "--heartbeat-interval", "0.01",
            "--heartbeat-timeout", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "idle" in out
        assert "recovered node0 -> node0~1" in out

    def test_chaos_seed_is_accepted(self, capsys):
        code = main([
            "cluster", "mulsum", "--nodes", "3", "-w", "2",
            "--chaos-seed", "5",
            "--heartbeat-interval", "0.01",
            "--heartbeat-timeout", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # either the seeded fault fired and was recovered, or its trigger
        # lay beyond the run's instance count — both are clean exits
        assert ("recovered" in out) or ("no scheduled fault fired" in out)

    def test_parser_rejects_bad_fault_spec(self):
        from repro.core import RuntimeStateError

        with pytest.raises(RuntimeStateError):
            main(["cluster", "mulsum", "--fail-node", "node0:explode"])

    def test_stall_fault_detected_via_progress_timeout(self, capsys):
        code = main([
            "cluster", "mulsum", "--nodes", "2", "-w", "2",
            "--fail-node", "node0:stall:2",
            "--heartbeat-interval", "0.01",
            "--progress-timeout", "0.15",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered node0 -> node0~1" in out
        assert "no progress" in out


class TestOpsCommand:
    def _fixture_clip(self, tmp_path, n=3, w=32, h=32, seed=7):
        path = tmp_path / f"clip{seed}.yuv"
        write_yuv_file(str(path), synthetic_sequence(n, w, h, seed))
        return path

    def test_mosaic_batch(self, tmp_path, capsys):
        out = tmp_path / "m.yuv"
        code = main([
            "ops", "mosaic", str(out),
            "--width", "32", "--height", "32", "--frames", "3",
        ])
        assert code == 0
        assert "mosaic 4 cams: 3 frames" in capsys.readouterr().out
        assert out.stat().st_size == 3 * (32 * 32 * 3 // 2)

    def test_mosaic_live_matches_batch(self, tmp_path, capsys):
        batch, live = tmp_path / "b.yuv", tmp_path / "l.yuv"
        args = ["--width", "32", "--height", "32", "--frames", "3"]
        assert main(["ops", "mosaic", str(batch)] + args) == 0
        assert main([
            "ops", "mosaic", str(live), "--live", "--fps", "0",
        ] + args) == 0
        capsys.readouterr()
        assert batch.read_bytes() == live.read_bytes()

    def test_motion_writes_samples(self, tmp_path, capsys):
        import json

        out = tmp_path / "mo.json"
        code = main([
            "ops", "motion", str(out),
            "--width", "32", "--height", "32", "--frames", "4",
            "--region", "8", "--slots", "3",
        ])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert len(payload["samples"]) == 3
        sample = payload["samples"][0]
        assert sample["sad"] > 0
        assert len(sample["zones"]) == 3

    def test_transcode_batch(self, tmp_path, capsys):
        out = tmp_path / "t.mjpeg"
        code = main([
            "ops", "transcode", str(out),
            "--width", "32", "--height", "32", "--frames", "2",
        ])
        assert code == 0
        assert "transcode /2: 2 frames" in capsys.readouterr().out
        assert out.read_bytes().startswith(b"\xff\xd8")

    def test_mosaic_sessions_write_per_session_files(
        self, tmp_path, capsys
    ):
        out = tmp_path / "m.yuv"
        code = main([
            "ops", "mosaic", str(out), "--live", "--fps", "0",
            "--sessions", "2", "--tier", "gold:1",
            "--width", "32", "--height", "32", "--frames", "2",
        ])
        text = capsys.readouterr().out
        assert code == 0
        assert "multitenant: 2 sessions" in text
        for name in ("m.s0.yuv", "m.s1.yuv"):
            assert (tmp_path / name).stat().st_size == \
                2 * (32 * 32 * 3 // 2)

    def test_source_glob_feeds_cameras(self, tmp_path, capsys):
        for seed in (7, 8):
            self._fixture_clip(tmp_path, seed=seed)
        out = tmp_path / "m.yuv"
        code = main([
            "ops", "mosaic", str(out), "--live", "--fps", "0",
            "--source-glob", str(tmp_path / "clip*.yuv"),
            "--width", "32", "--height", "32", "--frames", "2",
        ])
        assert code == 0
        capsys.readouterr()
        assert out.stat().st_size == 2 * (32 * 32 * 3 // 2)

    def test_source_feeds_motion(self, tmp_path, capsys):
        import json

        clip = self._fixture_clip(tmp_path, n=4)
        out = tmp_path / "mo.json"
        code = main([
            "ops", "motion", str(out), "--live", "--fps", "0",
            "--source", str(clip),
            "--width", "32", "--height", "32", "--frames", "3",
            "--region", "8",
        ])
        assert code == 0
        capsys.readouterr()
        assert len(json.loads(out.read_text())["samples"]) == 2

    def test_source_glob_without_matches_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "ops", "mosaic", str(tmp_path / "m.yuv"), "--live",
                "--source-glob", str(tmp_path / "nope*.yuv"),
            ])

    def test_mjpeg_accepts_source_flag(self, tmp_path, capsys):
        clip = self._fixture_clip(tmp_path)
        out = tmp_path / "c.mjpeg"
        code = main([
            "mjpeg", str(out), "--live", "--fps", "0",
            "--source", str(clip),
            "--width", "32", "--height", "32", "--frames", "2",
        ])
        assert code == 0
        capsys.readouterr()
        assert out.read_bytes().startswith(b"\xff\xd8")
