"""Property tests: the algebra compiles to the same bytes a hand-written
kernel program produces, across backends and batch sizes; plus the merge
age-alignment edge cases (unequal rates, stalled source, skew)."""

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ops
from repro.core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelDef,
    Program,
    StoreSpec,
    run_program,
)


@dataclass(frozen=True)
class Plan:
    """One randomly drawn pipeline: source(n frames of `size` int64) →
    window(`window`)-sum map (× mul + add, optionally blocked) → sink."""

    n: int
    size: int
    window: int
    block: int  # 0 = whole-field fetch
    mul: int
    add: int


@st.composite
def plans(draw):
    size = draw(st.sampled_from([4, 8, 12]))
    block = draw(st.sampled_from([0, 2, 4]))
    return Plan(
        n=draw(st.integers(2, 6)),
        size=size,
        window=draw(st.integers(1, 3)),
        block=block,
        mul=draw(st.integers(1, 5)),
        add=draw(st.integers(-7, 7)),
    )


def _frames(plan: Plan) -> list[np.ndarray]:
    rng = np.random.default_rng(plan.n * 1000 + plan.size)
    return [
        rng.integers(-100, 100, size=plan.size).astype(np.int64)
        for _ in range(plan.n)
    ]


def _expected(plan: Plan, frames) -> list[np.ndarray]:
    out = []
    for t in range(plan.n - plan.window + 1):
        acc = sum(frames[t + k] for k in range(plan.window))
        out.append(acc * plan.mul + plan.add)
    return out


def _map_body(plan: Plan):
    def body(ctx):
        acc = sum(
            ctx.fetched[f"x@{k}"] for k in range(plan.window)
        ) if plan.window > 1 else ctx.fetched["x"]
        ctx.emit("y", acc * plan.mul + plan.add)

    return body


def _algebra_pipeline(plan: Plan, frames) -> ops.CompiledPipeline:
    h = ops.source(
        "src", {"x": ("int64", (plan.size,))},
        frames=[{"x": f} for f in frames],
    )
    if plan.window > 1:
        h = h.window(plan.window)
    if plan.block:
        h = h.block(plan.block)
        out_block = {"y": (plan.block,)}
    else:
        out_block = None
    m = h.map(
        "m", _map_body(plan),
        out={"y": ("int64", (plan.size,))}, out_block=out_block,
    )
    return ops.compile_ops(m.sink("out"))


def _handwritten_program(plan: Plan, frames):
    """The same pipeline written the way every pre-ops workload is:
    explicit FieldDefs, FetchSpecs, StoreSpecs, output handler."""
    fields = [
        FieldDef("in", "int64", 1, aging=True, shape=(plan.size,)),
        FieldDef("mid", "int64", 1, aging=True, shape=(plan.size,)),
    ]

    def src_body(ctx):
        if ctx.age < len(frames):
            ctx.emit("out", frames[ctx.age])

    if plan.block:
        dims = (Dim.of("i", plan.block),)
        index_vars = ("i",)
    else:
        dims = ()
        index_vars = ()
    fetches = tuple(
        FetchSpec(
            f"x@{k}" if plan.window > 1 else "x",
            "in", age=AgeExpr.var(k), dims=dims,
        )
        for k in range(plan.window)
    )

    def collect_body(ctx):
        ctx.output("res", ctx.fetched["m"])

    kernels = [
        KernelDef(
            "gen", src_body, has_age=True,
            stores=(StoreSpec("in", key="out"),),
        ),
        KernelDef(
            "stage", _map_body(plan), has_age=True,
            fetches=fetches,
            stores=(StoreSpec("mid", dims=dims, key="y"),),
            index_vars=index_vars,
        ),
        KernelDef(
            "collect", collect_body, has_age=True,
            fetches=(FetchSpec("m", "mid", age=AgeExpr.var(0)),),
        ),
    ]
    results: dict[int, np.ndarray] = {}

    def handler(kernel, age, index, key, value):
        results[age] = value

    program = Program.build(fields, kernels, output_handler=handler)
    return program, results


def _run_algebra(plan, frames, **kw) -> list[bytes]:
    pipe = _algebra_pipeline(plan, frames)
    run_program(pipe.program, timeout=120, **kw)
    return [np.asarray(v).tobytes() for v in pipe.collector().values()]


class TestAlgebraEquivalence:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plans())
    def test_matches_handwritten_across_batch_sizes(self, plan):
        frames = _frames(plan)
        expected = [e.tobytes() for e in _expected(plan, frames)]

        program, results = _handwritten_program(plan, frames)
        run_program(program, workers=2, timeout=120)
        hand = [results[a].tobytes() for a in sorted(results)]
        assert hand == expected

        for batch in (1, 8):
            got = _run_algebra(plan, frames, workers=2, batch=batch)
            assert got == expected

    def test_matches_handwritten_on_processes(self):
        # One pinned example on the shared-memory backend (process
        # startup is too slow to put under hypothesis).
        plan = Plan(n=4, size=8, window=2, block=4, mul=3, add=-2)
        frames = _frames(plan)
        expected = [e.tobytes() for e in _expected(plan, frames)]
        got = _run_algebra(
            plan, frames, workers=2, backend="processes"
        )
        assert got == expected


class TestMergeAlignment:
    def _merge_pipe(self, a_frames, b_frames, skew=0):
        a = ops.source(
            "a", {"x": ("int64", (4,))},
            frames=[{"x": f} for f in a_frames],
        )
        b = ops.source(
            "b", {"x": ("int64", (4,))},
            frames=b_frames if callable(b_frames)
            else [{"x": f} for f in b_frames],
        )
        if skew:
            b = b.skew(skew)
        m = ops.merge(
            "m", [a, b],
            lambda ctx: ctx.emit(
                "y", ctx.fetched["a.x"] - ctx.fetched["b.x"]
            ),
            out={"y": ("int64", (4,))},
        )
        return ops.compile_ops(m.sink("out"))

    @pytest.mark.parametrize("na,nb", [(5, 2), (2, 5), (3, 3)])
    def test_unequal_rates_end_at_shortest(self, na, nb):
        af = [np.full(4, 10 + t, dtype=np.int64) for t in range(na)]
        bf = [np.full(4, t, dtype=np.int64) for t in range(nb)]
        pipe = self._merge_pipe(af, bf)
        run_program(pipe.program, workers=2, timeout=60)
        got = pipe.collector().values()
        assert len(got) == min(na, nb)
        for t, arr in enumerate(got):
            np.testing.assert_array_equal(
                arr, np.full(4, 10, dtype=np.int64)
            )

    def test_stalled_source_stops_cleanly(self):
        # Source b dries up mid-stream (callable payload returns None
        # from age 2): the merged stream must stop at 2 outputs and the
        # run must quiesce instead of hanging on the stalled input.
        af = [np.full(4, 10 + t, dtype=np.int64) for t in range(6)]

        def b_frames(age):
            if age >= 2:
                return None
            return {"x": np.full(4, age, dtype=np.int64)}

        pipe = self._merge_pipe(af, b_frames)
        result = run_program(pipe.program, workers=2, timeout=60)
        assert result.reason == "idle"
        assert pipe.collector().ages == [0, 1]

    @pytest.mark.parametrize("skew", [1, 2])
    def test_skew_aligns_ages(self, skew):
        n = 6
        af = [np.full(4, 100 + t, dtype=np.int64) for t in range(n)]
        bf = [np.full(4, t, dtype=np.int64) for t in range(n)]
        pipe = self._merge_pipe(af, bf, skew=skew)
        run_program(pipe.program, workers=2, timeout=60)
        got = pipe.collector().values()
        # Output t combines a@t with b@(t+skew); the skewed input runs
        # out `skew` ages earlier, shortening the merged stream.
        assert len(got) == n - skew
        for t, arr in enumerate(got):
            np.testing.assert_array_equal(
                arr, np.full(4, 100 - skew, dtype=np.int64)
            )
