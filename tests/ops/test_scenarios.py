"""Byte-identity tests for the three operator-algebra scenarios
(mosaic, motion, transcode) across threads, processes, cluster, and
live-vs-batch compilation."""

import numpy as np
import pytest

from repro.core import run_program
from repro.workloads import (
    MosaicConfig,
    MotionConfig,
    TranscodeConfig,
    build_mosaic,
    build_mosaic_stream,
    build_motion,
    build_motion_stream,
    build_transcode,
    build_transcode_stream,
    mosaic_baseline,
    motion_baseline,
    transcode_baseline,
)

MOSAIC = MosaicConfig(cams=4, width=32, height=32, frames=3)
MOTION = MotionConfig(width=32, height=32, frames=4, region=8, slots=3)
TRANSCODE = TranscodeConfig(width=32, height=32, frames=3)


def _mosaic_bytes(frames):
    return [f.tobytes() for f in frames]


class TestMosaic:
    def test_threads_matches_baseline(self):
        pipe = build_mosaic(MOSAIC)
        run_program(pipe.program, workers=4, timeout=120)
        got = pipe.collector().values()
        assert _mosaic_bytes(got) == _mosaic_bytes(
            mosaic_baseline(MOSAIC)
        )

    def test_scalar_matches_vectorized(self):
        pipe = build_mosaic(MOSAIC, vectorize=False)
        run_program(pipe.program, workers=2, timeout=120, batch=1)
        assert _mosaic_bytes(pipe.collector().values()) == \
            _mosaic_bytes(mosaic_baseline(MOSAIC))

    def test_processes_matches_baseline(self):
        pipe = build_mosaic(MOSAIC)
        run_program(
            pipe.program, workers=2, timeout=300, backend="processes"
        )
        assert _mosaic_bytes(pipe.collector().values()) == \
            _mosaic_bytes(mosaic_baseline(MOSAIC))

    def test_live_matches_batch(self):
        from repro.media import synthetic_sequence
        from repro.stream import SequenceSource, StreamConfig

        sources = [
            SequenceSource(synthetic_sequence(
                MOSAIC.frames, MOSAIC.width, MOSAIC.height,
                MOSAIC.seed + i,
            ))
            for i in range(MOSAIC.cams)
        ]
        pipe = build_mosaic_stream(
            MOSAIC,
            stream=StreamConfig(fps=0.0, max_frames=MOSAIC.frames),
            sources=sources,
        )
        run_program(
            pipe.program, workers=4, timeout=120, stream=pipe.binding
        )
        assert _mosaic_bytes(pipe.collector().values()) == \
            _mosaic_bytes(mosaic_baseline(MOSAIC))


class TestMotion:
    def test_threads_matches_baseline(self):
        pipe = build_motion(MOTION)
        run_program(pipe.program, workers=4, timeout=120)
        got = pipe.collector().values()
        base = motion_baseline(MOTION)
        assert len(got) == MOTION.frames - 1 == len(base)
        for g, b in zip(got, base):
            np.testing.assert_array_equal(g["m"], b["m"])
            np.testing.assert_array_equal(g["z"], b["z"])

    def test_zone_totals_cover_all_regions(self):
        pipe = build_motion(MOTION)
        run_program(pipe.program, workers=2, timeout=120)
        for sample in pipe.collector().values():
            np.testing.assert_array_equal(
                sample["z"].sum(axis=0),
                sample["m"].reshape(-1, 2).sum(axis=0),
            )

    def test_live_matches_batch(self):
        from repro.media import synthetic_sequence
        from repro.stream import SequenceSource, StreamConfig

        source = SequenceSource(synthetic_sequence(
            MOTION.frames, MOTION.width, MOTION.height, MOTION.seed
        ))
        pipe = build_motion_stream(
            MOTION,
            stream=StreamConfig(fps=0.0, max_frames=MOTION.frames),
            source=source,
        )
        run_program(
            pipe.program, workers=4, timeout=120, stream=pipe.binding
        )
        base = motion_baseline(MOTION)
        got = pipe.collector().values()
        assert len(got) == len(base)
        for g, b in zip(got, base):
            np.testing.assert_array_equal(g["m"], b["m"])
            np.testing.assert_array_equal(g["z"], b["z"])


class TestTranscode:
    def test_threads_matches_baseline(self):
        pipe = build_transcode(TRANSCODE)
        run_program(pipe.program, workers=4, timeout=120)
        assert pipe.collector().values() == \
            transcode_baseline(TRANSCODE)

    def test_scalar_matches_vectorized(self):
        pipe = build_transcode(TRANSCODE, vectorize=False)
        run_program(pipe.program, workers=2, timeout=120, batch=1)
        assert pipe.collector().values() == \
            transcode_baseline(TRANSCODE)

    def test_output_decodes_to_downscaled_frames(self):
        from repro.media import decode_jpeg

        pipe = build_transcode(TRANSCODE)
        run_program(pipe.program, workers=2, timeout=120)
        ow, oh = TRANSCODE.out_size
        for data in pipe.collector().values():
            dec = decode_jpeg(data)
            assert dec.frame.y.shape == (oh, ow)

    def test_live_matches_batch(self):
        from repro.stream import SequenceSource, StreamConfig
        from repro.workloads import make_input_jpegs

        jpegs = make_input_jpegs(TRANSCODE)
        pipe = build_transcode_stream(
            TRANSCODE,
            stream=StreamConfig(fps=0.0, max_frames=len(jpegs)),
            source=SequenceSource(jpegs),
        )
        run_program(
            pipe.program, workers=4, timeout=120, stream=pipe.binding
        )
        assert pipe.collector().values() == \
            transcode_baseline(TRANSCODE, jpegs)


class TestCluster:
    """Distributed identity: the same scenarios over a 2-node cluster."""

    def test_mosaic_on_cluster(self):
        from repro.dist import Cluster

        pipe = build_mosaic(MOSAIC)
        Cluster(pipe.program, {"n0": 2, "n1": 2}).run(timeout=300)
        assert _mosaic_bytes(pipe.collector().values()) == \
            _mosaic_bytes(mosaic_baseline(MOSAIC))

    def test_motion_on_cluster(self):
        from repro.dist import Cluster

        pipe = build_motion(MOTION)
        Cluster(pipe.program, {"n0": 2, "n1": 2}).run(timeout=300)
        base = motion_baseline(MOTION)
        got = pipe.collector().values()
        assert len(got) == len(base)
        for g, b in zip(got, base):
            np.testing.assert_array_equal(g["m"], b["m"])
            np.testing.assert_array_equal(g["z"], b["z"])
