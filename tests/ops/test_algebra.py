"""Unit tests for the operator-algebra surface (``repro.ops``)."""

import numpy as np
import pytest

from repro import ops
from repro.core.naming import validate_component, validate_field_name


def _src(name="src", n=4, shape=(4,)):
    return ops.source(
        name,
        {"x": ("int64", shape)},
        frames=[{"x": np.arange(int(np.prod(shape)), dtype=np.int64)
                 .reshape(shape) + t} for t in range(n)],
    )


class TestNaming:
    def test_validate_component_rejects(self):
        for bad in ("", "a.b", "a/b", 123, None):
            with pytest.raises(ValueError):
                validate_component(bad)

    def test_validate_field_name_allows_dots(self):
        validate_field_name("cam0.y")
        with pytest.raises(ValueError):
            validate_field_name("cam0..y")
        with pytest.raises(ValueError):
            validate_field_name("cam0/y")

    def test_operator_names_validated(self):
        for bad in ("", "a.b", "a/b"):
            with pytest.raises(ValueError):
                ops.source(bad, {"x": ("int64", (4,))}, frames=[])
        with pytest.raises(ValueError):
            _src().map("a.b", lambda ctx: None, out={"y": ("int64", (4,))})

    def test_port_names_validated(self):
        with pytest.raises(ValueError):
            ops.source("s", {"a.b": ("int64", (4,))}, frames=[])
        with pytest.raises(ValueError):
            ops.source("s", {}, frames=[])

    def test_field_naming_convention(self):
        h = _src("cam")
        assert h.port_fields == (("x", "cam.x"),)


class TestSlotOf:
    def test_deterministic_and_in_range(self):
        for slots in (1, 3, 7, 64):
            for key in (0, 1, "a", (2, 3), ("r", 5)):
                s = ops.slot_of(key, slots)
                assert 0 <= s < slots
                assert s == ops.slot_of(key, slots)

    def test_known_values_stable(self):
        # Pinned: a changed hash would silently re-shard every keyed
        # partition, so the assignment is part of the public contract.
        import hashlib

        for key in ((0, 0), (1, 2), "zone"):
            expect = int.from_bytes(
                hashlib.blake2b(
                    repr(key).encode(), digest_size=8
                ).digest(),
                "big",
            ) % 4
            assert ops.slot_of(key, 4) == expect

    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            ops.slot_of("k", 0)


class TestModifiers:
    def test_window_skew_block_validation(self):
        h = _src()
        with pytest.raises(ValueError):
            h.window(0)
        with pytest.raises(ValueError):
            h.skew(-1)
        with pytest.raises(ValueError):
            h.block()

    def test_handles_are_immutable_values(self):
        h = _src()
        w = h.window(3)
        assert h.window_size == 1 and w.window_size == 3

    def test_select_missing_port(self):
        h = _src()
        with pytest.raises(KeyError):
            h["nope"]

    def test_select_orders_ports(self):
        h = ops.source(
            "s",
            {"a": ("int64", (2,)), "b": ("int64", (2,))},
            frames=[],
        )
        sel = h.select("b", "a")
        assert [p for p, _ in sel.port_fields] == ["b", "a"]


class TestGraphConstraints:
    def test_multicast_rejects_windowed_input(self):
        with pytest.raises(ValueError):
            _src().window(2).multicast("mc", 2)

    def test_multicast_branch_ports(self):
        b0, b1 = _src().multicast("mc", 2)
        assert dict(b0.port_fields)["x"] == "mc.x_b0"
        assert dict(b1.port_fields)["x"] == "mc.x_b1"

    def test_merge_rejects_duplicate_inputs(self):
        h = _src()
        with pytest.raises(ValueError):
            ops.merge(
                "m", [h, h], lambda ctx: None,
                out={"y": ("int64", (4,))},
            )

    def test_merge_and_sink_need_inputs(self):
        with pytest.raises(ValueError):
            ops.merge("m", [], lambda ctx: None,
                      out={"y": ("int64", (4,))})
        with pytest.raises(ValueError):
            ops.sink("s", [])

    def test_keyed_partition_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            _src().keyed_partition(
                "kp", 0, lambda ctx: None, out={"z": ("int64", (2,))}
            )

    def test_keyed_partition_field_gains_slots_axis(self):
        kp = _src().keyed_partition(
            "kp", 3, lambda ctx: None, out={"z": ("int64", (2,))}
        )
        assert kp.node.ports["z"].shape == (3, 2)


class TestCompileValidation:
    def test_terminal_must_be_sink(self):
        with pytest.raises(ValueError):
            ops.compile_ops(_src())

    def test_duplicate_sink_keys(self):
        a = _src("a").sink("sa", key="out")
        b = _src("b").sink("sb", key="out")
        with pytest.raises(ValueError):
            ops.compile_ops([a, b])

    def test_batch_needs_payloads(self):
        h = ops.source("s", {"x": ("int64", (4,))})
        with pytest.raises(ValueError):
            ops.compile_ops(h.sink("k"))

    def test_live_needs_frame_source(self):
        h = _src()
        with pytest.raises(ValueError):
            ops.compile_ops(h.sink("k"), mode="live")

    def test_sink_rejects_blocked_input(self):
        h = _src(shape=(4, 4)).block(2, 2)
        with pytest.raises(ValueError):
            ops.compile_ops(ops.sink("k", [h]))

    def test_keyed_partition_rejects_blocked_input(self):
        h = _src(shape=(4, 4)).block(2, 2)
        with pytest.raises(ValueError):
            ops.compile_ops(
                h.keyed_partition(
                    "kp", 2, lambda ctx: None,
                    out={"z": ("int64", (2,))},
                ).sink("k")
            )
