"""Lowering tests: operator graph → fields + kernels (``compile_ops``)."""

import numpy as np
import pytest

from repro import ops
from repro.core import AgeExpr, run_program


def _src(name="src", n=4, shape=(4,)):
    size = int(np.prod(shape))
    return ops.source(
        name,
        {"x": ("int64", shape)},
        frames=[
            {"x": (np.arange(size, dtype=np.int64) + t).reshape(shape)}
            for t in range(n)
        ],
    )


def _kernel(pipe, name):
    return pipe.program.kernels[name]


class TestLoweringShapes:
    def test_source_lowers_to_aged_store_kernel(self):
        pipe = ops.compile_ops(_src().sink("out"))
        k = _kernel(pipe, "src")
        assert k.has_age and not k.fetches
        assert [s.field for s in k.stores] == ["src.x"]
        assert pipe.program.fields["src.x"].shape == (4,)

    def test_live_mode_has_no_source_kernel(self):
        from repro.stream import SequenceSource

        h = ops.source(
            "src", {"x": ("int64", (4,))},
            live=SequenceSource([np.zeros(4, dtype=np.int64)]),
        )
        pipe = ops.compile_ops(h.sink("out"), mode="live")
        assert "src" not in pipe.program.kernels
        assert pipe.binding is not None
        assert pipe.binding.completion_key == "out"

    def test_window_expands_to_age_range_fetches(self):
        def body(ctx):
            ctx.emit("y", ctx.fetched["x@0"] + ctx.fetched["x@1"])

        pipe = ops.compile_ops(
            _src().window(2)
            .map("m", body, out={"y": ("int64", (4,))})
            .sink("out")
        )
        k = _kernel(pipe, "m")
        assert [f.param for f in k.fetches] == ["x@0", "x@1"]
        assert [f.age for f in k.fetches] == [
            AgeExpr.var(0), AgeExpr.var(1),
        ]

    def test_skew_offsets_fetch_age(self):
        a, b = _src("a"), _src("b")
        pipe = ops.compile_ops(
            ops.merge(
                "m", [a, b.skew(2)],
                lambda ctx: ctx.emit(
                    "y", ctx.fetched["a.x"] + ctx.fetched["b.x"]
                ),
                out={"y": ("int64", (4,))},
            ).sink("out")
        )
        k = _kernel(pipe, "m")
        by_param = {f.param: f.age for f in k.fetches}
        assert by_param == {
            "a.x": AgeExpr.var(0), "b.x": AgeExpr.var(2),
        }

    def test_blocked_fetch_gets_index_dims(self):
        def body(ctx):
            ctx.emit("y", ctx.fetched["x"] * 2)

        pipe = ops.compile_ops(
            _src(shape=(4, 4)).block(2, 2)
            .map("m", body, out={"y": ("int64", (4, 4))},
                 out_block={"y": (2, 2)})
            .sink("out")
        )
        k = _kernel(pipe, "m")
        assert k.index_vars == ("i0", "i1")
        (fetch,) = k.fetches
        assert [d.var for d in fetch.dims] == ["i0", "i1"]
        assert [d.block for d in fetch.dims] == [2, 2]

    def test_block_wider_than_port_rank_rejected(self):
        with pytest.raises(ValueError):
            ops.compile_ops(
                _src(shape=(4,)).block(2, 2)
                .map("m", lambda ctx: None,
                     out={"y": ("int64", (4,))})
                .sink("out")
            )

    def test_keyed_partition_kernel(self):
        pipe = ops.compile_ops(
            _src().keyed_partition(
                "kp", 3,
                lambda ctx: ctx.emit(
                    "z",
                    np.array([ctx.index["slot"]], dtype=np.int64),
                ),
                out={"z": ("int64", (1,))},
            ).sink("out")
        )
        k = _kernel(pipe, "kp")
        assert k.index_vars == ("slot",)
        assert k.domain == {"slot": 3}
        (store,) = k.stores
        assert store.dims[0].var == "slot"
        assert pipe.program.fields["kp.z"].shape == (3, 1)

    def test_multicast_fans_out_store_specs(self):
        b0, b1 = _src().multicast("mc", 2)
        pipe = ops.compile_ops(ops.sink(
            "out", [b0, b1],
            fn=lambda age, v: (v["mc.x_b0"], v["mc.x_b1"]),
        ))
        k = _kernel(pipe, "mc")
        assert sorted(s.field for s in k.stores) == [
            "mc.x_b0", "mc.x_b1",
        ]
        assert len({s.key for s in k.stores}) == 2

    def test_sink_kernel_has_no_stores(self):
        pipe = ops.compile_ops(_src().sink("out"))
        k = _kernel(pipe, "out")
        assert k.stores == () and len(k.fetches) == 1


class TestCompiledExecution:
    def test_linear_pipeline_matches_numpy(self):
        def body(ctx):
            ctx.emit("y", ctx.fetched["x"] * 3 + 1)

        pipe = ops.compile_ops(
            _src(n=5)
            .map("m", body, out={"y": ("int64", (4,))})
            .sink("out")
        )
        run_program(pipe.program, workers=2, timeout=60)
        got = pipe.collector().values()
        assert len(got) == 5
        for t, arr in enumerate(got):
            np.testing.assert_array_equal(
                arr, (np.arange(4, dtype=np.int64) + t) * 3 + 1
            )

    def test_multicast_branches_diverge_and_merge(self):
        b0, b1 = _src(n=3).multicast("mc", 2)

        def dbl(ctx):
            ctx.emit("y", ctx.fetched["x"] * 2)

        def neg(ctx):
            ctx.emit("y", -ctx.fetched["x"])

        d = b0.map("dbl", dbl, out={"y": ("int64", (4,))})
        ng = b1.map("neg", neg, out={"y": ("int64", (4,))})
        m = ops.merge(
            "m", [d, ng],
            lambda ctx: ctx.emit(
                "y", ctx.fetched["dbl.y"] + ctx.fetched["neg.y"]
            ),
            out={"y": ("int64", (4,))},
        )
        pipe = ops.compile_ops(m.sink("out"))
        run_program(pipe.program, workers=2, timeout=60)
        for t, arr in enumerate(pipe.collector().values()):
            x = np.arange(4, dtype=np.int64) + t
            np.testing.assert_array_equal(arr, x * 2 - x)

    def test_callable_payload_ends_stream(self):
        def frames(age):
            if age >= 3:
                return None
            return {"x": np.full(4, age, dtype=np.int64)}

        h = ops.source("src", {"x": ("int64", (4,))}, frames=frames)
        pipe = ops.compile_ops(h.sink("out"))
        run_program(pipe.program, workers=2, timeout=60)
        assert pipe.collector().ages == [0, 1, 2]

    def test_two_sinks_collect_separately(self):
        h = _src(n=3)
        b0, b1 = h.multicast("mc", 2)
        s1 = b0.sink("raw")
        s2 = b1.map(
            "m",
            lambda ctx: ctx.emit("y", ctx.fetched["x"] + 100),
            out={"y": ("int64", (4,))},
        ).sink("shifted")
        pipe = ops.compile_ops([s1, s2])
        run_program(pipe.program, workers=2, timeout=60)
        raw = pipe.collector("raw").values()
        shifted = pipe.collector("shifted").values()
        assert len(raw) == len(shifted) == 3
        for a, b in zip(raw, shifted):
            np.testing.assert_array_equal(a + 100, b)
