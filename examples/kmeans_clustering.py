#!/usr/bin/env python3
"""K-means clustering through P2G (figure 7 / section VII-A).

Runs the init → assign → refine aging loop at both decomposition
granularities, checks the centroid trajectory against sequential
Lloyd's iteration (bit-identical), and shows the table-III-style
micro-benchmark — including the dispatch/kernel-time ratio that makes
the fine-grained decomposition saturate the dependency analyzer.

Run:  python examples/kmeans_clustering.py [n] [k] [iterations] [workers]
"""

import sys
import time

import numpy as np

from repro.core import run_program
from repro.workloads import build_kmeans, generate_dataset, kmeans_baseline


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    iterations = int(sys.argv[3]) if len(sys.argv) > 3 else 10
    workers = int(sys.argv[4]) if len(sys.argv) > 4 else 4

    print(f"n={n} points, K={k}, {iterations} iterations, "
          f"{workers} workers\n")
    baseline = kmeans_baseline(n=n, k=k, iterations=iterations)
    points, _ = generate_dataset(n)

    for granularity in ("point", "pair"):
        program, result_sink = build_kmeans(
            n=n, k=k, iterations=iterations, granularity=granularity
        )
        t0 = time.perf_counter()
        run = run_program(program, workers=workers, timeout=1800)
        elapsed = time.perf_counter() - t0
        identical = all(
            np.allclose(result_sink.history[a], baseline.history[a])
            for a in baseline.history
        )
        stats = run.stats
        assign = stats["assign"]
        print(f"--- granularity={granularity} ---")
        print(f"time: {elapsed:.2f} s | trajectory == Lloyd's: {identical} "
              f"| inertia: {result_sink.inertia(points):.1f}")
        print(f"assign: {assign.instances} instances, "
              f"dispatch/total ratio {assign.dispatch_ratio:.2f} "
              f"(the LLS coarsening signal)")
        print(run.instrumentation.table(
            order=["init", "assign", "refine", "print"]))
        print()


if __name__ == "__main__":
    main()
