#!/usr/bin/env python3
"""Deadlines and alternate code paths (paper, section V-B).

A live-style pipeline: a source produces frames in real time; an
``encode`` kernel polls the global timer the program declares and —
when a frame's processing deadline has passed — takes the *alternate
code path*: instead of storing the (expensive) encoded frame, it stores
a skip marker to a different field, creating the new dependencies the
paper describes ("such an alternate code-path is executed by storing to
a different field than in the primary path").

A ``mux`` kernel merges whichever of the two fields was written per age,
so the output stream keeps real-time pacing: late frames are skipped,
on-time frames are encoded.

Run:  python examples/deadline_stream.py [frames] [deadline_ms] [workers]
"""

import sys
import time

import numpy as np

from repro.core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelContext,
    KernelDef,
    Program,
    StoreSpec,
    run_program,
)
from repro.media import encode_jpeg, synthetic_sequence
from repro.media.yuv import YUVFrame


def build_stream_program(frames: int, deadline_ms: float):
    clip = synthetic_sequence(frames, width=176, height=144)
    output: dict[int, str] = {}

    def source_body(ctx: KernelContext) -> None:
        if ctx.age >= len(clip):
            return  # end of stream
        # A live source stamps each frame's arrival; the deadline for a
        # frame is measured from ITS arrival (stored alongside the data,
        # so the check is deterministic under any scheduling).
        ctx.emit("arrival", ctx.timers["t1"].now() * 1000.0)
        ctx.emit("raw", clip[ctx.age].y)

    def encode_body(ctx: KernelContext) -> None:
        frame_y = ctx["frame"].astype(np.uint8)
        t1 = ctx.timers["t1"]
        # Simulate occasionally slow encodes: every third frame is heavy.
        if ctx.age % 3 == 1:
            time.sleep(deadline_ms * 2 / 1000.0)
        elapsed_ms = t1.now() * 1000.0 - float(ctx["arrived"][0])
        if elapsed_ms > deadline_ms:
            # Deadline missed -> alternate path: store a skip marker.
            ctx.emit("skipped", 1)
            return
        h, w = frame_y.shape
        ch, cw = h // 2, w // 2
        frame = YUVFrame(
            frame_y,
            np.full((ch, cw), 128, np.uint8),
            np.full((ch, cw), 128, np.uint8),
        )
        ctx.emit("encoded", len(encode_jpeg(frame, quality=60)))

    def mux_enc_body(ctx: KernelContext) -> None:
        output[ctx.age] = f"encoded ({int(ctx['size'][0])} bytes)"

    def mux_skip_body(ctx: KernelContext) -> None:
        output[ctx.age] = "SKIPPED (deadline missed)"

    program = Program.build(
        fields=[
            FieldDef("raw", "uint8", 2),
            FieldDef("arrival", "float64", 1),
            FieldDef("encoded", "int64", 1),
            FieldDef("skipped", "int32", 1),
        ],
        kernels=[
            KernelDef(
                "source", source_body, has_age=True,
                stores=(StoreSpec("raw", key="raw"),
                        StoreSpec("arrival", key="arrival")),
            ),
            KernelDef(
                "encode", encode_body, has_age=True,
                fetches=(FetchSpec("frame", "raw"),
                         FetchSpec("arrived", "arrival")),
                stores=(
                    StoreSpec("encoded", dims=(Dim.all(),), key="encoded"),
                    StoreSpec("skipped", dims=(Dim.all(),), key="skipped"),
                ),
            ),
            KernelDef(
                "mux_enc", mux_enc_body, has_age=True,
                fetches=(FetchSpec("size", "encoded"),),
            ),
            KernelDef(
                "mux_skip", mux_skip_body, has_age=True,
                fetches=(FetchSpec("_marker", "skipped"),),
            ),
        ],
        timers=("t1",),
        name="deadline-stream",
    )
    return program, output


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    deadline_ms = float(sys.argv[2]) if len(sys.argv) > 2 else 40.0
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 2

    program, output = build_stream_program(frames, deadline_ms)
    run_program(program, workers=workers, timeout=120)

    encoded = sum(1 for v in output.values() if v.startswith("encoded"))
    for age in sorted(output):
        print(f"frame {age}: {output[age]}")
    print(f"\n{encoded}/{len(output)} frames met the "
          f"{deadline_ms:.0f} ms deadline")


if __name__ == "__main__":
    main()
