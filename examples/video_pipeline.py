#!/usr/bin/env python3
"""Full video round trip through two P2G pipelines.

1. Encode a synthetic clip with the P2G MJPEG *encoder* (figure 8).
2. Wrap the frames in a playable MJPG AVI container.
3. Decode the AVI back with the P2G MJPEG *decoder* (the reverse
   pipeline: serial VLD kernel, data-parallel IDCT kernels).
4. Report per-frame PSNR against the original clip.

Run:  python examples/video_pipeline.py [frames] [workers] [out.avi]
"""

import sys
import time

from repro.core import run_program
from repro.media import psnr, read_avi, split_frames, synthetic_sequence, write_avi
from repro.workloads import MJPEGConfig, build_mjpeg, build_mjpeg_decoder


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    avi_path = sys.argv[3] if len(sys.argv) > 3 else "/tmp/p2g_clip.avi"

    cfg = MJPEGConfig(width=176, height=144, frames=frames, quality=80)
    clip = synthetic_sequence(frames, cfg.width, cfg.height, cfg.seed)

    # --- encode -----------------------------------------------------------
    t0 = time.perf_counter()
    enc_program, enc_sink = build_mjpeg(clip, cfg)
    enc_result = run_program(enc_program, workers=workers, timeout=1800)
    enc_s = time.perf_counter() - t0
    jpegs = split_frames(enc_sink.stream())
    print(f"encoded  {len(jpegs)} frames in {enc_s:.2f}s "
          f"({enc_result.instrumentation.total_instances()} kernel "
          f"instances)")

    # --- container --------------------------------------------------------
    avi = write_avi(avi_path, jpegs, cfg.width, cfg.height, fps=25)
    print(f"wrote    {avi_path} ({len(avi)} bytes, playable MJPG AVI)")

    # --- decode ------------------------------------------------------------
    info, back = read_avi(avi_path)
    assert info.frame_count == frames
    t0 = time.perf_counter()
    dec_program, dec_sink = build_mjpeg_decoder(back, cfg)
    dec_result = run_program(dec_program, workers=workers, timeout=1800)
    dec_s = time.perf_counter() - t0
    print(f"decoded  {len(dec_sink.frames)} frames in {dec_s:.2f}s "
          f"({dec_result.instrumentation.total_instances()} kernel "
          f"instances)")

    # --- verify -------------------------------------------------------------
    scores = [
        psnr(dec_sink.frames[i].y, clip[i].y) for i in range(frames)
    ]
    print(f"luma PSNR: min {min(scores):.2f} dB, "
          f"mean {sum(scores) / len(scores):.2f} dB")
    print("\nencoder kernels:")
    print(enc_result.instrumentation.table(
        order=["read", "ydct", "udct", "vdct", "vlc"]))
    print("\ndecoder kernels:")
    print(dec_result.instrumentation.table(
        order=["vld", "yidct", "uidct", "vidct", "write"]))


if __name__ == "__main__":
    main()
