#!/usr/bin/env python3
"""Quickstart: the paper's figure-5 program, twice.

First with the plain Python API (fields + kernels + fetch/store specs),
then compiled from the P2G kernel language — both produce the exact
series the paper prints: ``{10..14} {20,22,24,26,28}`` for age 0,
``{25,27,29,31,33} {50,54,58,62,66}`` for age 1, and so on.

Run:  python examples/quickstart.py [max_age] [workers]
"""

import sys

import numpy as np

from repro.core import run_program
from repro.lang import compile_program
from repro.workloads import build_mulsum, expected_series

KERNEL_SOURCE = """
// The mul2/plus5 cycle of figure 5 (native blocks are Python here).
int32[] m_data age;
int32[] p_data age;

init:
  local int32[] values;
  %{
    for i in range(5):
        put(values, i + 10, i)
  %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  fetch value = m_data(a)[x];
  %{ value *= 2 %}
  store p_data(a)[x] = value;

plus5:
  age a;
  index x;
  fetch value = p_data(a)[x];
  %{ value += 5 %}
  store m_data(a+1)[x] = value;

print:
  age a;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{ sink[a] = (m.copy(), p.copy()) %}
"""


def main() -> None:
    max_age = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    print("=== Python API ===")
    program, sink = build_mulsum()
    result = run_program(program, workers=workers, max_age=max_age)
    for age in sorted(sink):
        m, p = sink[age]
        print(f"age {age}: m_data={m.tolist()} p_data={p.tolist()}")
    print(result.instrumentation.table(
        order=["init", "mul2", "plus5", "print"]
    ))

    print("\n=== Kernel language ===")
    lang_sink: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    lang_program = compile_program(
        KERNEL_SOURCE, bindings={"sink": lang_sink}, name="mulsum"
    )
    run_program(lang_program, workers=workers, max_age=max_age)
    for age in sorted(lang_sink):
        m, p = lang_sink[age]
        print(f"age {age}: m_data={m.tolist()} p_data={p.tolist()}")

    expected = expected_series(max_age + 1)
    ok = all(
        np.array_equal(sink[a][0], expected[a][0])
        and np.array_equal(lang_sink[a][0], expected[a][0])
        for a in expected
    )
    print(f"\nmatches the paper's published series: {ok}")


if __name__ == "__main__":
    main()
