#!/usr/bin/env python3
"""The low-level scheduler's granularity knobs (figure 4 / section V-A).

Walks the exact progression the paper draws for the mul2/plus5 program:

* Age 1 — the program as written: one ``mul2`` instance per element;
* Age 2 — *data* granularity reduced: ``mul2`` fetches the whole field
  in one instance (``coarsen``);
* Age 3 — *task* granularity reduced: ``mul2`` and ``plus5`` fused into
  one kernel (``fuse``), the intermediate store kept because ``print``
  still fetches it;
* Age 4 — both: the fused kernel over the whole field, "effectively a
  classical for-loop".

Then shows the adaptive policy doing the same from instrumentation: the
fine-grained K-means ``assign`` kernel's dispatch ratio triggers a
coarsening recommendation, and the coarsened program runs with far
fewer instances while producing identical centroids.

Finally the *online* path (DESIGN.md §10): the same policy runs as a
live :class:`AdaptationDriver` against a single running node —
``run_program(..., adapt=AdaptationConfig(...))``, the API behind the
CLI's ``--adapt`` — and re-binds the program mid-run at a safe age
boundary, with centroids byte-identical to the non-adaptive run.

Run:  python examples/lls_granularity.py
"""

import numpy as np

from repro.core import (
    AdaptationConfig,
    AdaptivePolicy,
    coarsen,
    fusable_pairs,
    fuse,
    run_program,
)
from repro.workloads import build_kmeans, build_mulsum, expected_series


def run_and_report(tag: str, program, max_age: int = 2):
    result = run_program(program, workers=2, max_age=max_age, timeout=60)
    counts = {k: v.instances for k, v in sorted(result.stats.items())}
    print(f"{tag:<28} instances: {counts}")
    return result


def main() -> None:
    expected = expected_series(3)

    print("=== figure 4: the four granularity configurations ===")
    program, sink = build_mulsum()
    run_and_report("Age 1 (as written)", program)
    assert np.array_equal(sink[0][1], expected[0][1])

    program2, sink2 = build_mulsum()
    coarse = coarsen(program2, "mul2", "x", factor=5)
    run_and_report("Age 2 (coarse data)", coarse)
    assert np.array_equal(sink2[0][1], expected[0][1])

    program3, sink3 = build_mulsum()
    print(f"fusable pipelines found: {fusable_pairs(program3)}")
    fused = fuse(program3, "mul2", "plus5")
    run_and_report("Age 3 (fused tasks)", fused)
    assert np.array_equal(sink3[0][1], expected[0][1])

    program4, sink4 = build_mulsum()
    both = coarsen(fuse(program4, "mul2", "plus5"), "mul2+plus5", "x", 5)
    run_and_report("Age 4 (fused + coarse)", both)
    assert np.array_equal(sink4[0][1], expected[0][1])

    print("\n=== adaptive policy on fine-grained K-means ===")
    fine, fine_sink = build_kmeans(
        n=120, k=6, iterations=4, granularity="pair"
    )
    fine_run = run_program(fine, workers=2, timeout=120)
    assign = fine_run.stats["assign"]
    print(f"assign: {assign.instances} instances, dispatch ratio "
          f"{assign.dispatch_ratio:.2f}")

    policy = AdaptivePolicy(ratio_target=0.25)
    decisions = policy.recommend(fine, fine_run.instrumentation)
    print(f"policy recommends: {decisions}")

    coarse_km, coarse_sink = build_kmeans(
        n=120, k=6, iterations=4, granularity="pair"
    )
    adapted = policy.apply(coarse_km, decisions)
    adapted_run = run_program(adapted, workers=2, timeout=120)
    a2 = adapted_run.stats["assign"]
    print(f"after coarsening: {a2.instances} instances, dispatch ratio "
          f"{a2.dispatch_ratio:.2f}")
    same = all(
        np.allclose(fine_sink.history[a], coarse_sink.history[a])
        for a in fine_sink.history
    )
    print(f"centroid trajectories identical: {same}")

    print("\n=== online adaptation: the policy as a live driver ===")
    live, live_sink = build_kmeans(
        n=400, k=20, iterations=6, granularity="point"
    )
    cfg = AdaptationConfig(interval=0.02, min_instances=32)
    live_run = run_program(live, workers=2, timeout=120, adapt=cfg)
    for rec in live_run.replans:
        what = "; ".join(repr(d) for d in rec.decisions)
        print(f"swapped at age {rec.epoch}: {what}")
    if not live_run.replans:
        print("no swap triggered (run finished before the driver fired)")

    ref, ref_sink = build_kmeans(
        n=400, k=20, iterations=6, granularity="point"
    )
    run_program(ref, workers=2, timeout=120)
    identical = all(
        np.array_equal(live_sink.history[a], ref_sink.history[a])
        for a in ref_sink.history
    )
    print(f"adaptive centroids byte-identical to plain run: {identical}")
    assert identical


if __name__ == "__main__":
    main()
