#!/usr/bin/env python3
"""Wavefront intra prediction — the paper's motivating example.

Section III: "Intra-frame prediction in H.264 AVC ... introduces many
dependencies between sub-blocks of a frame ... these operations have a
high potential for benefiting from both types of parallelism."

Each 8x8 block is DC-predicted from its reconstructed left/top
neighbours *of the same frame*, expressed as shrink-boundary stencil
fetches on the kernel's own output field.  No scheduling code exists in
the workload: the dependency analyzer discovers the anti-diagonal
wavefront on its own, block (0,0) starts as soon as the frame arrives,
and concurrency grows to the frame's diagonal width (visible in the
ready-queue high-water mark below).  The result is bit-identical to a
sequential raster-order encoder at every worker count.

Run:  python examples/intra_wavefront.py [width] [height] [frames] [workers]
"""

import sys
import time

import numpy as np

from repro.core import run_program
from repro.workloads import IntraConfig, build_intra, intra_baseline


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 192
    frames = int(sys.argv[3]) if len(sys.argv) > 3 else 3
    workers = int(sys.argv[4]) if len(sys.argv) > 4 else 4

    cfg = IntraConfig(width=width, height=height, frames=frames)
    bh, bw = cfg.blocks
    print(f"{width}x{height}, {bh}x{bw} blocks/frame, {frames} frames, "
          f"{workers} workers")
    print(f"wavefront diagonal width: {min(bh, bw)} blocks\n")

    program, sink = build_intra(config=cfg)
    t0 = time.perf_counter()
    result = run_program(program, workers=workers, timeout=600)
    p2g_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    baseline = intra_baseline(config=cfg)
    base_s = time.perf_counter() - t0

    identical = all(
        np.array_equal(sink.recon[a], baseline[a]) for a in range(frames)
    )
    print(f"P2G (wavefront):    {p2g_s:.2f} s")
    print(f"sequential raster:  {base_s:.2f} s")
    print(f"bit-identical:      {identical}")
    print(f"mean luma PSNR:     {sink.mean_psnr():.2f} dB "
          f"(DC prediction, qstep {cfg.qstep})")
    print(f"ready-queue high water: {result.ready_high_water} "
          f"(the discovered wavefront)\n")
    print(result.instrumentation.table(order=["read", "intra", "quality"]))


if __name__ == "__main__":
    main()
