#!/usr/bin/env python3
"""The same pipeline in Nornir-style KPN and in P2G (sections II–III).

Implements a 3-stage stream transform twice:

* as a Kahn process network — every channel wired by hand, explicit
  termination counting, bounded buffers babysat by a deadlock monitor;
* as a P2G program — fetch/store statements on aging fields, with data
  parallelism (per-element instances) the KPN version simply does not
  express without manually multiplying processes.

Both produce identical output; the point is the programming-model
comparison the paper argues from, plus the automatic data parallelism
P2G extracts (visible in the instance counts).

Run:  python examples/kpn_vs_p2g.py [elements] [generations]
"""

import sys

import numpy as np

from repro.core import (
    AgeExpr,
    Dim,
    FetchSpec,
    FieldDef,
    KernelDef,
    Program,
    StoreSpec,
    run_program,
)
from repro.kpn import ChannelClosed, Network


def run_kpn(values: list[int], generations: int) -> list[list[int]]:
    """mul2 -> plus5 over `generations` rounds, with manual channels."""
    out: list[list[int]] = []
    net = Network("pipeline")

    def source(ins, outs):
        data = list(values)
        for _ in range(generations):
            for v in data:
                outs["out"].put(v)
            data = [v * 2 + 5 for v in data]

    def mul2(ins, outs):
        while True:
            outs["out"].put(ins["in"].get() * 2)

    def plus5(ins, outs):
        while True:
            outs["out"].put(ins["in"].get() + 5)

    def sink(ins, outs):
        current: list[int] = []
        try:
            while True:
                current.append(ins["in"].get())
                if len(current) == len(values):
                    out.append([v - 5 for v in current])  # undo +5: report mul2 output
                    current = []
        except ChannelClosed:
            pass

    net.add_process("source", source)
    net.add_process("mul2", mul2)
    net.add_process("plus5", plus5)
    net.add_process("sink", sink)
    net.connect("source", "out", "mul2", "in", capacity=4)
    net.connect("mul2", "out", "plus5", "in", capacity=4)
    net.connect("plus5", "out", "sink", "in", capacity=4)
    net.run(timeout=60)
    print(f"  KPN: 4 processes, 3 hand-wired channels, "
          f"{net.total_messages()} messages, "
          f"{net.deadlocks_resolved} deadlocks resolved")
    return out


def run_p2g(values: list[int], generations: int) -> list[list[int]]:
    collected: dict[int, np.ndarray] = {}
    init_values = np.array(values, dtype=np.int32)

    def init_body(ctx):
        ctx.emit("m_data", init_values)

    def mul2_body(ctx):
        ctx.emit("p_data", ctx["value"] * 2)

    def plus5_body(ctx):
        ctx.emit("m_data", ctx["value"] + 5)

    def sink_body(ctx):
        collected[ctx.age] = ctx["p"].copy()

    program = Program.build(
        fields=[FieldDef("m_data", "int32", 1), FieldDef("p_data", "int32", 1)],
        kernels=[
            KernelDef("init", init_body,
                      stores=(StoreSpec("m_data", age=AgeExpr.const(0)),)),
            KernelDef("mul2", mul2_body, has_age=True, index_vars=("x",),
                      fetches=(FetchSpec("value", "m_data",
                                         dims=(Dim.of("x"),), scalar=True),),
                      stores=(StoreSpec("p_data", dims=(Dim.of("x"),)),)),
            KernelDef("plus5", plus5_body, has_age=True, index_vars=("x",),
                      fetches=(FetchSpec("value", "p_data",
                                         dims=(Dim.of("x"),), scalar=True),),
                      stores=(StoreSpec("m_data", age=AgeExpr.var(1),
                                        dims=(Dim.of("x"),)),)),
            KernelDef("sink", sink_body, has_age=True,
                      fetches=(FetchSpec("p", "p_data"),)),
        ],
        name="pipeline",
    )
    result = run_program(program, workers=4, max_age=generations - 1,
                         timeout=60)
    counts = {k: v.instances for k, v in sorted(result.stats.items())}
    print(f"  P2G: no channels declared; automatic per-element data "
          f"parallelism, instances: {counts}")
    return [collected[a].tolist() for a in sorted(collected)]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    generations = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    values = list(range(10, 10 + n))

    print("KPN (Nornir-style):")
    kpn_out = run_kpn(values, generations)
    print("P2G:")
    p2g_out = run_p2g(values, generations)

    print(f"\noutputs identical: {kpn_out == p2g_out}")
    for i, row in enumerate(p2g_out):
        print(f"  generation {i}: {row}")


if __name__ == "__main__":
    main()
