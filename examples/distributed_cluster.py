#!/usr/bin/env python3
"""Master node, topology and HLS partitioning (figure 1 / section IV).

Builds a heterogeneous three-node cluster, lets the master's high-level
scheduler partition the K-means dependency graph over it (greedy / KL /
tabu), runs the program across the nodes — store events crossing node
boundaries travel over the publish-subscribe transport — and then
demonstrates elastic repartitioning after a node joins.

Run:  python examples/distributed_cluster.py [n] [k] [iterations]
"""

import sys

import numpy as np

from repro.core.graph import weighted_final_graph
from repro.dist import (
    Cluster,
    LocalTopology,
    MasterNode,
    ProcessorSpec,
    partition_graph,
)
from repro.workloads import build_kmeans, kmeans_baseline


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    iterations = int(sys.argv[3]) if len(sys.argv) > 3 else 5

    program, sink = build_kmeans(
        n=n, k=k, iterations=iterations, granularity="point"
    )

    nodes = {
        "bignode": LocalTopology(
            "bignode",
            (ProcessorSpec("cpu", cores=4, speed=1.0),
             ProcessorSpec("gpu", cores=128, speed=0.1)),
        ),
        "smallnode": LocalTopology(
            "smallnode", (ProcessorSpec("cpu", cores=2, speed=1.0),)
        ),
        "slownode": LocalTopology(
            "slownode", (ProcessorSpec("cpu", cores=2, speed=0.5),)
        ),
    }
    cluster = Cluster(program, nodes)
    print("global topology:",
          {t.node: t.cpu_capacity for t in cluster.master.topology.nodes()})

    result = cluster.run(method="kl", timeout=300)
    print("\nHLS assignment:")
    print(result.assignment.describe())
    print(f"\nrun: {result.reason}, wall {result.wall_time:.2f}s")
    print(f"cross-node store events: {result.transport.messages} "
          f"({result.transport.bytes} bytes)")
    top = sorted(result.transport.per_link.items(),
                 key=lambda kv: -kv[1])[:3]
    for (src, dst), cnt in top:
        print(f"  {src} -> {dst}: {cnt} messages")

    baseline = kmeans_baseline(n=n, k=k, iterations=iterations)
    ok = all(np.allclose(sink.history[a], baseline.history[a])
             for a in baseline.history)
    print(f"distributed result == sequential Lloyd's: {ok}")

    # ---- elastic repartitioning: a node joins, the plan changes -------
    print("\n--- node 'newnode' joins; instrumentation-weighted replan ---")
    master: MasterNode = cluster.master
    master.register(LocalTopology(
        "newnode", (ProcessorSpec("cpu", cores=8, speed=1.2),)
    ))
    instr = result.instrumentation
    new_plan, changed = master.repartition(program, instr, method="kl")
    print(f"topology stale before replan: True, plan changed: {changed}")
    print(new_plan.describe())

    # ---- partitioner comparison on the weighted graph ------------------
    graph = weighted_final_graph(program, instr)
    caps = master.topology.capacities()
    print("\npartitioner comparison (edge cut / imbalance, "
          "balance-weighted objective):")
    for method in ("greedy", "kl", "tabu"):
        kwargs = {} if method == "greedy" else {"balance_penalty": 4.0}
        p = partition_graph(graph, caps, method, **kwargs)
        print(f"  {method:>6}: cut={p.edge_cut(graph):8.1f}  "
              f"imbalance={p.imbalance(graph):.2f}")


if __name__ == "__main__":
    main()
