#!/usr/bin/env python3
"""Motion JPEG encoding through P2G (figure 8 / section VII-B).

Encodes a synthetic foreman-like CIF clip with the P2G pipeline
(read+splitYUV → per-macro-block DCT/quant kernels → VLC+write),
verifies the stream against the standalone single-threaded baseline
encoder (byte-identical), decodes every frame with the bundled JPEG
decoder, and reports PSNR plus the table-II-style micro-benchmark.

Run:  python examples/mjpeg_encode.py [frames] [workers] [out.mjpeg]
"""

import sys
import time

from repro.core import run_program
from repro.media import decode_jpeg, psnr, split_frames, synthetic_sequence
from repro.workloads import MJPEGConfig, build_mjpeg, mjpeg_baseline


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    out_path = sys.argv[3] if len(sys.argv) > 3 else None

    cfg = MJPEGConfig(frames=frames)  # CIF, quality 75, matrix DCT
    clip = synthetic_sequence(frames, cfg.width, cfg.height, cfg.seed)

    program, sink = build_mjpeg(clip, cfg)
    t0 = time.perf_counter()
    result = run_program(program, workers=workers, timeout=1800)
    p2g_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    baseline = mjpeg_baseline(clip, cfg)
    base_s = time.perf_counter() - t0

    stream = sink.stream()
    print(f"P2G encode:      {p2g_s:6.2f} s  ({workers} workers, "
          f"{cfg.luma_blocks} Y + 2x{cfg.chroma_blocks} C blocks/frame)")
    print(f"standalone:      {base_s:6.2f} s  (single-threaded)")
    print(f"byte-identical:  {stream == baseline}")
    print(f"stream size:     {len(stream)} bytes, "
          f"{sink.frame_count()} frames")

    jpegs = split_frames(stream)
    scores = []
    for i, data in enumerate(jpegs):
        decoded = decode_jpeg(data)
        scores.append(psnr(decoded.frame.y, clip[i].y))
    print(f"luma PSNR:       min {min(scores):.2f} dB / "
          f"mean {sum(scores) / len(scores):.2f} dB")

    print()
    print(result.instrumentation.table(
        order=["read", "ydct", "udct", "vdct", "vlc"],
        title="per-kernel micro-benchmark (cf. paper table II):",
    ))

    if out_path:
        with open(out_path, "wb") as fh:
            fh.write(stream)
        print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
